// Command deploy runs the infrastructure-deployment methodology of the
// paper's Section 6.2 (Figure 3): phase 1 solves MC-PERF with a
// node-opening cost to decide where to deploy file servers; phase 2
// recomputes the per-class bounds on the reduced topology.
package main

import (
	"flag"
	"fmt"
	"os"

	"wideplace/internal/core"
	"wideplace/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "deploy:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workloadFlag = flag.String("workload", "web", "workload: web or group")
		scaleFlag    = flag.String("scale", "small", "experiment scale: small, medium or large")
		zetaFlag     = flag.Float64("zeta", 0, "node-opening cost (0 = scale preset)")
		verbose      = flag.Bool("v", false, "print per-bound progress to stderr")
	)
	flag.Parse()

	spec, err := experiments.NewSpec(experiments.WorkloadKind(*workloadFlag), experiments.Scale(*scaleFlag))
	if err != nil {
		return err
	}
	if *zetaFlag > 0 {
		spec.Zeta = *zetaFlag
	}
	sys, err := experiments.Build(spec)
	if err != nil {
		return err
	}
	var progress experiments.Progress
	if *verbose {
		progress = func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	res, err := experiments.Figure3(sys, core.BoundOptions{}, progress)
	if err != nil {
		return err
	}
	fmt.Printf("# phase 1 (zeta=%g): deploy nodes at sites %v (%d of %d)\n",
		spec.Zeta, res.OpenNodes, len(res.OpenNodes), spec.Nodes)
	return res.Figure.WriteTSV(os.Stdout)
}
