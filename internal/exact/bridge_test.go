package exact

import (
	"errors"
	"math"
	"testing"
	"time"

	"wideplace/internal/core"
	"wideplace/internal/topology"
	"wideplace/internal/workload"
	"wideplace/internal/xrand"
)

// treeInstance builds a tree MC-PERF instance with a seeded random
// single-interval read workload.
func treeInstance(t *testing.T, topoOpts topology.TreeOptions, tlat float64, readSeed uint64) *core.Instance {
	t.Helper()
	topo, err := topology.GenerateTree(topoOpts)
	if err != nil {
		t.Fatal(err)
	}
	const objects = 4
	counts := &workload.Counts{
		Nodes: topo.N, Intervals: 1, Objects: objects, Delta: time.Hour,
		Reads:  alloc3int(topo.N, 1, objects),
		Writes: alloc3int(topo.N, 1, objects),
	}
	rng := xrand.New(readSeed)
	for n := 0; n < topo.N; n++ {
		for k := 0; k < objects; k++ {
			if rng.Intn(3) > 0 {
				counts.Reads[n][0][k] = rng.Intn(40)
			}
		}
	}
	inst, err := core.NewInstance(topo, counts, core.DefaultCost(), core.QoS(1, tlat))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func alloc3int(n, i, k int) [][][]int {
	out := make([][][]int, n)
	for a := range out {
		out[a] = make([][]int, i)
		for b := range out[a] {
			out[a][b] = make([]int, k)
		}
	}
	return out
}

// TestSolveInstanceBracketsLP is the oracle chain on crafted tree
// instances: for the general and tree-upwards classes,
//
//	LP lower bound <= exact optimum <= rounded certificate cost
//
// and the DP witness is itself a verified feasible solution whose
// MC-PERF cost equals the reported optimum. The brute-force bridge
// agrees with the DP bridge on the optimum.
func TestSolveInstanceBracketsLP(t *testing.T) {
	const tol = 1e-9
	shapes := []string{topology.TreeKAry, topology.TreeRandom, topology.TreeCaterpillar}
	for _, shape := range shapes {
		inst := treeInstance(t, topology.TreeOptions{N: 12, Shape: shape, Seed: 11}, 200, 31)
		tu, err := core.TreeUpwards(inst.Topo)
		if err != nil {
			t.Fatal(err)
		}
		for _, class := range []*core.Class{core.General(), tu} {
			sol, err := SolveInstance(inst, class)
			if err != nil {
				t.Fatalf("%s/%s: SolveInstance: %v", shape, class.Name, err)
			}
			brute, err := SolveInstanceBrute(inst, class)
			if err != nil {
				t.Fatalf("%s/%s: SolveInstanceBrute: %v", shape, class.Name, err)
			}
			if sol.Cost != brute.Cost {
				t.Errorf("%s/%s: DP bridge cost %g != brute bridge cost %g", shape, class.Name, sol.Cost, brute.Cost)
			}
			b, err := inst.LowerBound(class, core.BoundOptions{})
			if err != nil {
				t.Fatalf("%s/%s: LowerBound: %v", shape, class.Name, err)
			}
			if b.LPBound > sol.Cost+tol {
				t.Errorf("%s/%s: LP bound %.12g above exact optimum %.12g", shape, class.Name, b.LPBound, sol.Cost)
			}
			if sol.Cost > b.FeasibleCost+tol {
				t.Errorf("%s/%s: exact optimum %.12g above rounded certificate %.12g", shape, class.Name, sol.Cost, b.FeasibleCost)
			}
			if err := inst.VerifySolution(class, sol.Store); err != nil {
				t.Errorf("%s/%s: DP witness infeasible: %v", shape, class.Name, err)
			}
			if got := inst.SolutionCost(class, sol.Store); math.Abs(got-sol.Cost) > tol {
				t.Errorf("%s/%s: SolutionCost(witness) = %g, oracle reports %g", shape, class.Name, got, sol.Cost)
			}
		}
	}
}

// TestSolveInstanceIntegralWitness: on a star of unreachable demanding
// leaves the optimum is forced (every demanding leaf self-stores), the
// tree-upwards LP is integral, and the rounded store must equal the DP
// witness exactly.
func TestSolveInstanceIntegralWitness(t *testing.T) {
	// kary with arity 6 and 7 nodes = root plus 6 leaves; hop latencies
	// in [300, 400] all exceed Tlat = 200.
	topo, err := topology.GenerateTree(topology.TreeOptions{
		N: 7, Shape: topology.TreeKAry, Arity: 6, Seed: 3, HopMin: 300, HopMax: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts := &workload.Counts{
		Nodes: 7, Intervals: 1, Objects: 2, Delta: time.Hour,
		Reads:  alloc3int(7, 1, 2),
		Writes: alloc3int(7, 1, 2),
	}
	// Object 0 read by leaves 1..3, object 1 by leaves 4..6.
	for n := 1; n <= 3; n++ {
		counts.Reads[n][0][0] = 5
	}
	for n := 4; n <= 6; n++ {
		counts.Reads[n][0][1] = 5
	}
	inst, err := core.NewInstance(topo, counts, core.DefaultCost(), core.QoS(1, 200))
	if err != nil {
		t.Fatal(err)
	}
	tu, err := core.TreeUpwards(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range []*core.Class{core.General(), tu} {
		sol, err := SolveInstance(inst, class)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Replicas != 6 || sol.Cost != 12 {
			t.Fatalf("%s: oracle found %d replicas costing %g, want 6 costing 12", class.Name, sol.Replicas, sol.Cost)
		}
		b, err := inst.LowerBound(class, core.BoundOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b.LPBound-sol.Cost) > 1e-9 || math.Abs(b.FeasibleCost-sol.Cost) > 1e-9 {
			t.Errorf("%s: LP %.12g / certificate %.12g, exact %g — the forced instance should be integral",
				class.Name, b.LPBound, b.FeasibleCost, sol.Cost)
		}
		for n := 0; n < 7; n++ {
			for k := 0; k < 2; k++ {
				if b.Store[n][0][k] != sol.Store[n][0][k] {
					t.Errorf("%s: rounded store and DP witness differ at node %d object %d", class.Name, n, k)
				}
			}
		}
	}
}

// TestSolveInstanceUnsupported enumerates the instance shapes the bridge
// must refuse with ErrUnsupported rather than mis-solve.
func TestSolveInstanceUnsupported(t *testing.T) {
	base := func() *core.Instance {
		return treeInstance(t, topology.TreeOptions{N: 8, Seed: 5}, 200, 17)
	}
	asGraph, err := topology.Generate(topology.GenOptions{N: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name  string
		inst  func() *core.Instance
		class func(*core.Instance) *core.Class
	}{
		{
			name: "non-tree topology",
			inst: func() *core.Instance {
				inst := base()
				counts := *inst.Counts
				out, err := core.NewInstance(asGraph, &counts, core.DefaultCost(), core.QoS(1, 200))
				if err != nil {
					t.Fatal(err)
				}
				return out
			},
		},
		{
			name: "multiple intervals",
			inst: func() *core.Instance {
				inst := base()
				inst.Counts.Intervals = 2
				for n := range inst.Counts.Reads {
					inst.Counts.Reads[n] = append(inst.Counts.Reads[n], make([]int, inst.Counts.Objects))
					inst.Counts.Writes[n] = append(inst.Counts.Writes[n], make([]int, inst.Counts.Objects))
				}
				return inst
			},
		},
		{
			name: "fractional QoS goal",
			inst: func() *core.Instance {
				inst := base()
				inst.Goal.Tqos = 0.9
				return inst
			},
		},
		{
			name: "latency penalty cost",
			inst: func() *core.Instance {
				inst := base()
				inst.Cost.Gamma = 1
				return inst
			},
		},
		{
			name: "initial placement",
			inst: func() *core.Instance {
				inst := base()
				if err := inst.SetInitial(inst.WarmInitial()); err != nil {
					t.Fatal(err)
				}
				return inst
			},
		},
		{
			name:  "storage-constrained class",
			inst:  base,
			class: func(*core.Instance) *core.Class { return core.StorageConstrained() },
		},
		{
			name:  "reactive class",
			inst:  base,
			class: func(*core.Instance) *core.Class { return core.Reactive() },
		},
		{
			name: "storage-free class with non-ancestor routing",
			inst: base,
			class: func(inst *core.Instance) *core.Class {
				// Local+origin routing without any storage constraint: the
				// rejection must come from the routing-matrix check itself.
				return &core.Class{Name: "local-routes", Fetch: inst.Topo.LocalPlusOrigin(), History: core.HistoryAll}
			},
		},
		{
			name: "restricted-knowledge class",
			inst: base,
			class: func(inst *core.Instance) *core.Class {
				return &core.Class{Name: "blinkered", Know: topology.IdentityMatrix(inst.Topo.N), History: core.HistoryAll}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inst := tc.inst()
			var class *core.Class
			if tc.class != nil {
				class = tc.class(inst)
			}
			if _, err := SolveInstance(inst, class); !errors.Is(err, ErrUnsupported) {
				t.Errorf("SolveInstance error = %v, want ErrUnsupported", err)
			}
		})
	}
}
