// Quickstart: build a small wide-area system, state a QoS goal, and ask
// which class of replica placement heuristics can meet it cheapest.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"wideplace/internal/core"
	"wideplace/internal/topology"
	"wideplace/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A 6-site corporate network; site 0 is the headquarters that stores
	// every file. Hops cost 100-200 ms, like the paper's AS-level topology.
	topo, err := topology.Generate(topology.GenOptions{N: 6, Seed: 42})
	if err != nil {
		return err
	}

	// One working day of file accesses with a heavy-tailed (web-like)
	// popularity distribution.
	trace, err := workload.GenerateWeb(workload.WebOptions{
		Nodes: 6, Objects: 20, Requests: 5000, Duration: 24 * time.Hour, Seed: 42,
	})
	if err != nil {
		return err
	}
	counts, err := trace.Bucket(time.Hour)
	if err != nil {
		return err
	}

	// Goal: 95% of every user's reads within 150 ms.
	inst, err := core.NewInstance(topo, counts, core.DefaultCost(), core.QoS(0.95, 150))
	if err != nil {
		return err
	}

	// Run the paper's methodology: rank all heuristic classes by their
	// inherent cost (lower bound) and pick the cheapest feasible one.
	sel, err := inst.SelectHeuristic(core.Classes(topo, 150), core.BoundOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("general lower bound (no heuristic can beat this): %.0f\n\n", sel.General.LPBound)
	fmt.Printf("%-26s %-12s %-12s %s\n", "class", "bound", "feasible", "verdict")
	for _, cb := range sel.Ranked {
		if !cb.Feasible() {
			fmt.Printf("%-26s %-12s %-12s cannot meet the goal\n", cb.Class.Name, "-", "-")
			continue
		}
		verdict := ""
		if cb.Class.Name == sel.Best.Class.Name {
			verdict = "<= pick a heuristic from this class"
		}
		fmt.Printf("%-26s %-12.0f %-12.0f %s\n", cb.Class.Name, cb.Bound.LPBound, cb.Bound.FeasibleCost, verdict)
	}
	return nil
}
