package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"wideplace/internal/controller"
	"wideplace/internal/core"
	"wideplace/internal/scenario"
	"wideplace/internal/workload"
)

// StreamRequest is the body of POST /controller/stream: a drift scenario
// replayed through the online placement controller, with one JSON line
// emitted per control interval as it is solved.
type StreamRequest struct {
	// Scenario is the declarative system + workload spec (the same form
	// job submissions accept).
	Scenario *scenario.Spec `json:"scenario"`
	// TQoS is the per-user QoS goal fraction (default 0.95).
	TQoS float64 `json:"tqos,omitempty"`
	// Reactive plans each interval from the previous interval's demand;
	// the default is clairvoyant lookahead.
	Reactive bool `json:"reactive,omitempty"`
	// Intervals caps the replay to the first N intervals (0 = all).
	Intervals int `json:"intervals,omitempty"`
	// DeltaMillis re-buckets the scenario's trace at this control period
	// (0 = the scenario's own).
	DeltaMillis int64 `json:"deltaMillis,omitempty"`
}

// streamHeader is the first line of a controller stream.
type streamHeader struct {
	Scenario  string  `json:"scenario"`
	Nodes     int     `json:"nodes"`
	Objects   int     `json:"objects"`
	Intervals int     `json:"intervals"`
	DeltaMs   int64   `json:"deltaMillis"`
	TQoS      float64 `json:"tqos"`
	Lookahead bool    `json:"lookahead"`
}

// streamTrailer is the last line of a completed controller stream.
type streamTrailer struct {
	Done            bool  `json:"done"`
	Intervals       int   `json:"intervals"`
	TotalIterations int   `json:"totalIterations"`
	TotalAdds       int   `json:"totalAdds"`
	TotalDrops      int   `json:"totalDrops"`
	WallNs          int64 `json:"wallNs"`
}

// handleControllerStream runs the online control loop over a drift
// scenario and streams each interval's StepResult as one JSON line
// (application/x-ndjson), flushed as soon as it is solved — a dashboard
// watching the stream sees placement diffs appear interval by interval
// instead of polling a job until the whole replay is done. The stream is
// a header line, one StepResult per interval, and a trailer with totals;
// closing the connection cancels the in-flight solve at its next
// iteration poll.
func (s *Server) handleControllerStream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, ErrDraining.Error())
		return
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	var req StreamRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decode request: "+err.Error())
		return
	}
	if req.Scenario == nil {
		writeError(w, http.StatusBadRequest, "a controller stream needs a scenario")
		return
	}
	if err := req.Scenario.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.TQoS == 0 {
		req.TQoS = 0.95
	}
	if req.TQoS <= 0 || req.TQoS >= 1 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("tqos %g outside (0, 1)", req.TQoS))
		return
	}
	if req.Intervals < 0 || req.DeltaMillis < 0 {
		writeError(w, http.StatusBadRequest, "intervals and deltaMillis must not be negative")
		return
	}
	res, err := scenario.Compile(*req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	sys := res.System
	counts := sys.Counts
	if req.DeltaMillis > 0 {
		if sys.Trace == nil {
			writeError(w, http.StatusBadRequest,
				"deltaMillis re-bucketing needs the raw trace; this scenario compiled in streaming mode (counts only)")
			return
		}
		if counts, err = sys.Trace.Bucket(time.Duration(req.DeltaMillis) * time.Millisecond); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	}
	intervals := counts.Intervals
	if req.Intervals > 0 && req.Intervals < intervals {
		intervals = req.Intervals
	}

	cfg := controller.Config{
		Topo:    sys.Topo,
		Objects: counts.Objects,
		Delta:   counts.Delta,
		Cost:    core.DefaultCost(),
		Goal:    core.QoS(req.TQoS, sys.Spec.Tlat),
	}
	cfg.LP.Ctx = r.Context()
	cfg.LP.CheckEvery = s.cfg.CheckEvery
	cfg.LP.Timeout = s.cfg.SolveTimeout
	cfg.LP.Presolve = s.cfg.Presolve
	cfg.LP.Pricing = s.cfg.Pricing
	cfg.LP.Factor = s.cfg.Factor
	ctl, err := controller.New(cfg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v interface{}) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(streamHeader{
		Scenario: req.Scenario.Name, Nodes: sys.Topo.N, Objects: counts.Objects,
		Intervals: intervals, DeltaMs: counts.Delta.Milliseconds(),
		TQoS: req.TQoS, Lookahead: !req.Reactive,
	}) {
		return
	}

	// The loop mirrors controller.Replay, inlined so each step can be
	// emitted (and flushed) the moment it is solved.
	trailer := streamTrailer{}
	planned := make([][]int, counts.Nodes)
	for n := range planned {
		planned[n] = make([]int, counts.Objects)
	}
	for i := 0; i < intervals; i++ {
		if r.Context().Err() != nil {
			return // client went away; the body is already committed
		}
		realized, err := counts.IntervalReads(i)
		if err != nil {
			emit(errorBody{Error: err.Error()})
			return
		}
		if !req.Reactive {
			planned = realized
		}
		st, err := ctl.Step(planned)
		if err != nil {
			emit(errorBody{Error: err.Error()})
			return
		}
		if st.Staleness, err = workload.Staleness(planned, realized); err != nil {
			emit(errorBody{Error: err.Error()})
			return
		}
		s.lpStats.Record(st.Stats)
		trailer.Intervals++
		trailer.TotalIterations += st.Iterations
		trailer.TotalAdds += st.Adds
		trailer.TotalDrops += st.Drops
		trailer.WallNs += st.WallNs
		if !emit(st) {
			return
		}
		planned = realized
	}
	trailer.Done = true
	emit(trailer)
}

// jobStreamLine wraps a job view for the header and trailer lines of a
// job stream, distinguishable from events by its type tag.
type jobStreamLine struct {
	Type string  `json:"type"` // "job"
	Job  JobView `json:"job"`
}

// handleJobStream streams a job's progress as NDJSON: a header line with
// the job's current view, one line per progress/column event as it
// happens, and a trailer with the terminal view once the job finishes. A
// job already finished streams header + trailer immediately, so clients
// need no state machine around the race between subscribing and
// finishing. Closing the connection just detaches the subscriber; the
// job keeps running (cancellation stays DELETE's).
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	events, unsubscribe := j.subscribe()
	defer unsubscribe()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(v interface{}) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !emit(jobStreamLine{Type: "job", Job: j.View()}) {
		return
	}
	for {
		select {
		case ev, open := <-events:
			if !open {
				emit(jobStreamLine{Type: "job", Job: j.View()})
				return
			}
			if !emit(ev) {
				return
			}
		case <-r.Context().Done():
			return // client went away; the job keeps running
		}
	}
}
