package experiments

import (
	"math"
	"sync"
	"testing"
	"time"

	"wideplace/internal/core"
	"wideplace/internal/topology"
	"wideplace/internal/workload"
)

func tinySystemInputs(t *testing.T) (*topology.Topology, *workload.Trace) {
	t.Helper()
	topo, err := topology.Generate(topology.GenOptions{N: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := workload.GenerateWeb(workload.WebOptions{
		Nodes: 4, Objects: 3, Requests: 200, Duration: 2 * time.Hour, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo, trace
}

func TestValidateQoS(t *testing.T) {
	if err := ValidateQoS([]float64{0.9, 0.95, 1}); err != nil {
		t.Errorf("valid points rejected: %v", err)
	}
	for name, pts := range map[string][]float64{
		"empty":     nil,
		"zero":      {0},
		"negative":  {-0.5},
		"above one": {1.01},
		"NaN":       {math.NaN()},
		"infinite":  {math.Inf(1)},
		"duplicate": {0.9, 0.9},
	} {
		if err := ValidateQoS(pts); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestNewSystemValidation(t *testing.T) {
	topo, trace := tinySystemInputs(t)
	qos := []float64{0.9}
	if _, err := NewSystem(nil, trace, time.Hour, 150, qos); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewSystem(topo, nil, time.Hour, 150, qos); err == nil {
		t.Error("nil trace accepted")
	}
	small, err := topology.Generate(topology.GenOptions{N: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(small, trace, time.Hour, 150, qos); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if _, err := NewSystem(topo, trace, 0, 150, qos); err == nil {
		t.Error("zero delta accepted")
	}
	for _, tlat := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := NewSystem(topo, trace, time.Hour, tlat, qos); err == nil {
			t.Errorf("tlat %v accepted", tlat)
		}
	}
	if _, err := NewSystem(topo, trace, time.Hour, 150, nil); err == nil {
		t.Error("empty QoS accepted")
	}
}

// TestNewSystemSweepWithProgress runs an explicit system through the
// exported Sweep and checks the OnCell progress callback: monotone done
// counts, a constant total, and a final count equal to the grid size.
func TestNewSystemSweepWithProgress(t *testing.T) {
	topo, trace := tinySystemInputs(t)
	sys, err := NewSystem(topo, trace, time.Hour, 150, []float64{0.8, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Spec.Workload != CustomWorkload {
		t.Errorf("workload = %q, want %q", sys.Spec.Workload, CustomWorkload)
	}
	if sys.Spec.Nodes != 4 || sys.Spec.Objects != 3 || sys.Spec.Requests != 200 {
		t.Errorf("spec provenance %+v does not match inputs", sys.Spec)
	}

	classes := []*core.Class{core.General(), core.Caching(topo)}
	var (
		mu    sync.Mutex
		calls []int
		total int
	)
	opts := Options{Parallel: 2, OnCell: func(done, tot int) {
		mu.Lock()
		defer mu.Unlock()
		calls = append(calls, done)
		total = tot
	}}
	fig, err := Sweep(sys, classes, "", opts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Points) != 2 {
		t.Fatalf("unexpected figure shape: %+v", fig.Series)
	}
	if fig.Title == "" {
		t.Error("default title not applied")
	}
	mu.Lock()
	defer mu.Unlock()
	if total != 4 || len(calls) != 4 {
		t.Fatalf("progress calls %v (total %d), want 4 calls with total 4", calls, total)
	}
	for i, d := range calls {
		if d != i+1 {
			t.Fatalf("done counts %v not monotone 1..4", calls)
		}
	}
}

func TestSweepRejectsEmptyClasses(t *testing.T) {
	topo, trace := tinySystemInputs(t)
	sys, err := NewSystem(topo, trace, time.Hour, 150, []float64{0.9})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Sweep(sys, nil, "", Options{}, nil); err == nil {
		t.Error("empty class list accepted")
	}
}
