package core

import (
	"errors"
	"math"
	"testing"
	"time"

	"wideplace/internal/topology"
	"wideplace/internal/workload"
)

// lineTopo builds the 3-node line 0 --100ms-- 1 --100ms-- 2 with origin 0.
func lineTopo(t *testing.T) *topology.Topology {
	t.Helper()
	tp, err := topology.New(3, []topology.Link{{A: 0, B: 1, Latency: 100}, {A: 1, B: 2, Latency: 100}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

// traceCounts builds counts directly from explicit accesses.
func traceCounts(t *testing.T, nodes, objects int, horizon time.Duration, delta time.Duration, acc []workload.Access) *workload.Counts {
	t.Helper()
	tr := &workload.Trace{Accesses: acc, NumNodes: nodes, NumObjects: objects, Duration: horizon}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := tr.Bucket(delta)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewInstanceValidation(t *testing.T) {
	tp := lineTopo(t)
	c := traceCounts(t, 3, 1, time.Hour, time.Hour, []workload.Access{{Node: 2}})
	if _, err := NewInstance(nil, c, DefaultCost(), QoS(0.9, 150)); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := NewInstance(tp, c, DefaultCost(), QoS(0, 150)); err == nil {
		t.Error("zero Tqos accepted")
	}
	if _, err := NewInstance(tp, c, DefaultCost(), QoS(1.5, 150)); err == nil {
		t.Error("Tqos > 1 accepted")
	}
	if _, err := NewInstance(tp, c, Cost{Alpha: -1}, QoS(0.9, 150)); err == nil {
		t.Error("negative cost accepted")
	}
	if _, err := NewInstance(tp, c, DefaultCost(), Goal{}); err == nil {
		t.Error("unset goal accepted")
	}
	badCounts := traceCounts(t, 2, 1, time.Hour, time.Hour, nil)
	if _, err := NewInstance(tp, badCounts, DefaultCost(), QoS(0.9, 150)); err == nil {
		t.Error("node-count mismatch accepted")
	}
	if _, err := NewInstance(tp, c, DefaultCost(), QoS(0.9, 150)); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
}

func TestGeneralBoundTinyExact(t *testing.T) {
	// One object, one interval; only node 2 reads (10 times), 200ms from
	// the origin. QoS 100% within 150ms requires one replica on node 1 or
	// 2 for one interval: cost alpha + beta = 2 exactly.
	tp := lineTopo(t)
	acc := make([]workload.Access, 10)
	for i := range acc {
		acc[i] = workload.Access{At: time.Duration(i) * time.Minute, Node: 2}
	}
	counts := traceCounts(t, 3, 1, time.Hour, time.Hour, acc)
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(1.0, 150))
	if err != nil {
		t.Fatal(err)
	}
	b, err := inst.LowerBound(General(), BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b.LPBound-2) > 1e-6 {
		t.Errorf("general LP bound = %g, want 2", b.LPBound)
	}
	if math.Abs(b.FeasibleCost-2) > 1e-6 {
		t.Errorf("feasible cost = %g, want 2", b.FeasibleCost)
	}
}

func TestOriginCoveredNodeIsFree(t *testing.T) {
	// Node 1 is 100ms from the origin: within the threshold, its reads
	// cost nothing. The bound must be 0.
	tp := lineTopo(t)
	acc := []workload.Access{{Node: 1}, {At: time.Minute, Node: 1}}
	counts := traceCounts(t, 3, 1, time.Hour, time.Hour, acc)
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(1.0, 150))
	if err != nil {
		t.Fatal(err)
	}
	b, err := inst.LowerBound(General(), BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.LPBound != 0 || b.FeasibleCost != 0 {
		t.Errorf("bound = (%g, %g), want (0, 0)", b.LPBound, b.FeasibleCost)
	}
}

func TestCachingColdMissInfeasible(t *testing.T) {
	// Reactive local caching cannot serve the very first access to an
	// object: a 100% QoS goal is unattainable for node 2 (one interval).
	tp := lineTopo(t)
	acc := []workload.Access{{Node: 2}}
	counts := traceCounts(t, 3, 1, time.Hour, time.Hour, acc)
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(1.0, 150))
	if err != nil {
		t.Fatal(err)
	}
	_, err = inst.LowerBound(Caching(tp), BoundOptions{})
	if !errors.Is(err, ErrGoalUnattainable) {
		t.Fatalf("err = %v, want ErrGoalUnattainable", err)
	}
}

func TestCachingCoversAfterFirstInterval(t *testing.T) {
	// Node 2 reads the object in intervals 0 and 1 (one read each). At QoS
	// 50%, caching can serve the second interval from a replica created
	// after the first access: cost alpha + beta = 2 with the SC top-up
	// charged symmetrically.
	tp := lineTopo(t)
	acc := []workload.Access{
		{At: 0, Node: 2},
		{At: 90 * time.Minute, Node: 2},
	}
	counts := traceCounts(t, 3, 1, 2*time.Hour, time.Hour, acc)
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(0.5, 150))
	if err != nil {
		t.Fatal(err)
	}
	b, err := inst.LowerBound(Caching(tp), BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One replica on node 2 in interval 1 requires capacity 1, provisioned
	// on both placement nodes for both intervals (4 alpha) plus one
	// creation: bound 5.
	if math.Abs(b.LPBound-5) > 0.01 {
		t.Errorf("caching bound = %g, want ~5 (small anti-degeneracy slack allowed)", b.LPBound)
	}
	if b.FeasibleCost < b.LPBound-1e-6 {
		t.Errorf("feasible cost %g below LP bound %g", b.FeasibleCost, b.LPBound)
	}
}

func TestPrefetchingDominatesReactive(t *testing.T) {
	// Proactive caching knows the current interval, so it can meet 100%
	// QoS where reactive caching cannot, and never at higher cost.
	tp := lineTopo(t)
	acc := []workload.Access{
		{At: 0, Node: 2},
		{At: 90 * time.Minute, Node: 2},
	}
	counts := traceCounts(t, 3, 1, 2*time.Hour, time.Hour, acc)
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(1.0, 150))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := inst.LowerBound(CachingPrefetch(tp), BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Coverage in both intervals: capacity 1 on both placement nodes for
	// both intervals (4 alpha) plus one creation: bound 5.
	if math.Abs(pb.LPBound-5) > 0.01 {
		t.Errorf("prefetch bound = %g, want ~5 (small anti-degeneracy slack allowed)", pb.LPBound)
	}
	if _, err := inst.LowerBound(Caching(tp), BoundOptions{}); !errors.Is(err, ErrGoalUnattainable) {
		t.Errorf("reactive caching should be unattainable at 100%%, got %v", err)
	}
}

func TestClassBoundsDominateGeneral(t *testing.T) {
	// Every class bound must be >= the general bound (adding constraints
	// cannot lower the optimum).
	tp, err := topology.Generate(topology.GenOptions{N: 6, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateWeb(workload.WebOptions{Nodes: 6, Objects: 12, Requests: 600, Seed: 5, Duration: 4 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := tr.Bucket(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(0.9, 150))
	if err != nil {
		t.Fatal(err)
	}
	gen, err := inst.LowerBound(General(), BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, class := range Classes(tp, 150) {
		b, err := inst.LowerBound(class, BoundOptions{SkipRounding: true})
		if errors.Is(err, ErrGoalUnattainable) {
			continue // a class may simply be unable to meet the goal
		}
		if err != nil {
			t.Fatalf("%s: %v", class.Name, err)
		}
		if b.LPBound < gen.LPBound-1e-6 {
			t.Errorf("%s bound %g below general bound %g", class.Name, b.LPBound, gen.LPBound)
		}
	}
}

func TestRoundingProducesFeasibleSolutions(t *testing.T) {
	tp, err := topology.Generate(topology.GenOptions{N: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateWeb(workload.WebOptions{Nodes: 6, Objects: 10, Requests: 500, Seed: 7, Duration: 4 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := tr.Bucket(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, tqos := range []float64{0.8, 0.95, 0.99} {
		inst, err := NewInstance(tp, counts, DefaultCost(), QoS(tqos, 150))
		if err != nil {
			t.Fatal(err)
		}
		for _, class := range []*Class{General(), StorageConstrained(), ReplicaConstrained(), CoopCaching(tp, 150)} {
			b, err := inst.LowerBound(class, BoundOptions{})
			if errors.Is(err, ErrGoalUnattainable) {
				continue
			}
			if err != nil {
				t.Fatalf("tqos=%g %s: %v", tqos, class.Name, err)
			}
			if b.FeasibleCost < b.LPBound-1e-6 {
				t.Errorf("tqos=%g %s: feasible %g < bound %g", tqos, class.Name, b.FeasibleCost, b.LPBound)
			}
			// Re-round to validate the integral solution itself.
			frac := cloneF3(b.StoreFrac)
			rr, err := inst.Round(class, frac, RoundOptions{})
			if err != nil {
				t.Fatalf("tqos=%g %s round: %v", tqos, class.Name, err)
			}
			if err := inst.VerifySolution(class, rr.Store); err != nil {
				t.Errorf("tqos=%g %s: %v", tqos, class.Name, err)
			}
		}
	}
}

func TestBoundMonotoneInQoS(t *testing.T) {
	// Tightening the QoS goal can never lower the bound.
	tp, err := topology.Generate(topology.GenOptions{N: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateWeb(workload.WebOptions{Nodes: 5, Objects: 8, Requests: 400, Seed: 3, Duration: 3 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := tr.Bucket(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	prev := -1.0
	for _, tqos := range []float64{0.5, 0.7, 0.9, 0.99, 1.0} {
		inst, err := NewInstance(tp, counts, DefaultCost(), QoS(tqos, 150))
		if err != nil {
			t.Fatal(err)
		}
		b, err := inst.LowerBound(General(), BoundOptions{SkipRounding: true})
		if err != nil {
			t.Fatalf("tqos=%g: %v", tqos, err)
		}
		if b.LPBound < prev-1e-6 {
			t.Errorf("bound decreased from %g to %g when tightening QoS to %g", prev, b.LPBound, tqos)
		}
		prev = b.LPBound
	}
}

func TestAvgLatencyTinyExact(t *testing.T) {
	// Node 2 reads 10 times; origin at 200ms. With Tavg = 200 no replica
	// is needed (bound 0). With Tavg = 100 node 2 needs a replica at
	// itself or node 1 for the read interval: cost 2 (alpha + beta).
	tp := lineTopo(t)
	acc := make([]workload.Access, 10)
	for i := range acc {
		acc[i] = workload.Access{At: time.Duration(i) * time.Minute, Node: 2}
	}
	counts := traceCounts(t, 3, 1, time.Hour, time.Hour, acc)

	instLoose, err := NewInstance(tp, counts, DefaultCost(), AvgLatency(200))
	if err != nil {
		t.Fatal(err)
	}
	b, err := instLoose.LowerBound(General(), BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.LPBound > 1e-6 {
		t.Errorf("avg bound at Tavg=200 = %g, want 0", b.LPBound)
	}

	instTight, err := NewInstance(tp, counts, DefaultCost(), AvgLatency(100))
	if err != nil {
		t.Fatal(err)
	}
	b, err = instTight.LowerBound(General(), BoundOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Serving all reads locally (0 ms) or from node 1 (100 ms) meets the
	// average; one replica for the interval costs 2. The LP may split
	// routing: half the reads can go to the origin if the other half are
	// local (avg = 100), with half a replica: cost 1.
	if b.LPBound < 1-1e-6 {
		t.Errorf("avg bound at Tavg=100 = %g, want >= 1", b.LPBound)
	}
}

func TestCreateAllowedWindows(t *testing.T) {
	tp := lineTopo(t)
	// Object 0 accessed by node 2 in interval 0 only; object 1 accessed by
	// node 1 in interval 1 only.
	acc := []workload.Access{
		{At: 0, Node: 2, Object: 0},
		{At: 90 * time.Minute, Node: 1, Object: 1},
	}
	counts := traceCounts(t, 3, 2, 3*time.Hour, time.Hour, acc)
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(0.5, 150))
	if err != nil {
		t.Fatal(err)
	}

	// Reactive local caching, history 1: node 2 may create object 0 only
	// in interval 1 (access in interval 0); never object 1 (node 1's
	// access is invisible to node 2's local knowledge).
	ca := inst.createAllowed(Caching(tp))
	if ca[2] == nil {
		t.Fatal("caching class should restrict creation")
	}
	if ca[2][0][0] {
		t.Error("node 2 interval 0: creation must be disallowed (reactive)")
	}
	if !ca[2][1][0] {
		t.Error("node 2 interval 1: creation of object 0 must be allowed")
	}
	if ca[2][2][0] {
		t.Error("node 2 interval 2: history window 1 has expired")
	}
	if ca[2][1][1] || ca[2][2][1] {
		t.Error("node 2 must never create object 1 under local knowledge")
	}

	// Cooperative caching: node 2 knows node 1 (within 150ms), so object 1
	// becomes creatable on node 2 in interval 2.
	cc := inst.createAllowed(CoopCaching(tp, 150))
	if !cc[2][2][1] {
		t.Error("coop caching: node 1's access should enable creation on node 2")
	}

	// Proactive (prefetch) with history 1: current interval counts.
	cp := inst.createAllowed(CachingPrefetch(tp))
	if !cp[2][0][0] {
		t.Error("prefetch: creation in the access interval must be allowed")
	}

	// Unrestricted class: nil rows.
	cg := inst.createAllowed(General())
	if cg[2] != nil {
		t.Error("general class must not restrict creation")
	}

	// Reactive with unbounded history: once accessed, always creatable.
	cr := inst.createAllowed(Reactive())
	if cr[2][0][0] {
		t.Error("reactive general: interval 0 creation must be disallowed")
	}
	if !cr[2][1][0] || !cr[2][2][0] {
		t.Error("reactive general: object 0 creatable from interval 1 onward")
	}
}

func TestVerifySolutionCatchesViolations(t *testing.T) {
	tp := lineTopo(t)
	acc := []workload.Access{{At: 0, Node: 2}}
	counts := traceCounts(t, 3, 1, 2*time.Hour, time.Hour, acc)
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(1.0, 150))
	if err != nil {
		t.Fatal(err)
	}
	// A placement created in interval 0 under reactive caching: illegal.
	store := [][][]bool{
		{{false}, {false}},
		{{false}, {false}},
		{{true}, {false}},
	}
	if err := inst.VerifySolution(Caching(tp), store); err == nil {
		t.Error("reactive violation not caught")
	}
	// No storage at all: QoS violation for node 2.
	empty := [][][]bool{
		{{false}, {false}},
		{{false}, {false}},
		{{false}, {false}},
	}
	if err := inst.VerifySolution(General(), empty); err == nil {
		t.Error("QoS violation not caught")
	}
	// Legal general placement.
	if err := inst.VerifySolution(General(), store); err != nil {
		t.Errorf("legal general placement rejected: %v", err)
	}
}

func TestSolutionCostComponents(t *testing.T) {
	tp := lineTopo(t)
	acc := []workload.Access{{At: 0, Node: 2}}
	counts := traceCounts(t, 3, 2, 2*time.Hour, time.Hour, acc)
	inst, err := NewInstance(tp, counts, DefaultCost(), QoS(1.0, 150))
	if err != nil {
		t.Fatal(err)
	}
	// Node 2 stores object 0 for both intervals, object 1 in interval 1.
	store := [][][]bool{
		{{false, false}, {false, false}},
		{{false, false}, {false, false}},
		{{true, false}, {true, true}},
	}
	// Storage: 3 object-intervals; creations: obj0@i0 and obj1@i1 = 2.
	got := inst.SolutionCost(General(), store)
	if got != 5 {
		t.Errorf("cost = %g, want 5 (3 storage + 2 creation)", got)
	}
	// With the replica constraint, object 1's replica count (max 1) must
	// be padded in interval 0: +1 storage... and object 0 already has one
	// replica in every interval, so rmax = 1 and the pad is for obj 1 at
	// interval 0 only.
	gotRC := inst.SolutionCost(ReplicaConstrained(), store)
	if gotRC != 6 {
		t.Errorf("RC cost = %g, want 6", gotRC)
	}
	// With the storage constraint, node 1 must match node 2's max
	// capacity (2 objects) for both intervals (+4 storage, +2 creation),
	// and node 2 itself pads interval 0 to 2 objects (+1).
	gotSC := inst.SolutionCost(StorageConstrained(), store)
	if gotSC != 5+4+2+1 {
		t.Errorf("SC cost = %g, want 12", gotSC)
	}
}

func TestZetaCountsOpenNodes(t *testing.T) {
	tp := lineTopo(t)
	acc := []workload.Access{{At: 0, Node: 2}}
	counts := traceCounts(t, 3, 1, time.Hour, time.Hour, acc)
	cost := DefaultCost()
	cost.Zeta = 100
	inst, err := NewInstance(tp, counts, cost, QoS(1.0, 150))
	if err != nil {
		t.Fatal(err)
	}
	store := [][][]bool{
		{{false}},
		{{false}},
		{{true}},
	}
	got := inst.SolutionCost(General(), store)
	if got != 2+100 {
		t.Errorf("cost = %g, want 102 (storage+creation+open)", got)
	}
}
