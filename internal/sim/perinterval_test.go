package sim

import (
	"testing"
	"time"

	"wideplace/internal/workload"
)

// scripted is a deterministic heuristic exercising both creation paths
// the per-interval attribution distinguishes: a boundary creation (in
// OnIntervalStart, charged to the interval being entered) and a reactive
// mid-interval creation (in OnRead, charged to the running interval).
type scripted struct{ env *Env }

func (s *scripted) Name() string          { return "scripted" }
func (s *scripted) Attach(env *Env) error { s.env = env; return nil }
func (s *scripted) OnIntervalStart(interval int, at time.Duration) {
	if interval == 1 {
		s.env.Tracker.Create(2, 0, at)
	}
}
func (s *scripted) OnRead(node, object int, at time.Duration) int {
	if node == 1 && at > 2*time.Hour {
		s.env.Tracker.Create(1, 0, at)
	}
	if s.env.Tracker.Stored(node, object) {
		return node
	}
	return Origin
}
func (s *scripted) ProvisionedObjectHours(time.Duration) float64 { return -1 }

func TestRunPerIntervalAttribution(t *testing.T) {
	tp := line3(t)
	tr := &workload.Trace{
		Accesses: []workload.Access{
			{At: 10 * time.Minute, Node: 1},               // interval 0: origin hit, 100ms
			{At: 70 * time.Minute, Node: 2},               // interval 1: local after boundary create
			{At: 130 * time.Minute, Node: 1},              // interval 2: local after reactive create
			{At: 135 * time.Minute, Node: 2, Write: true}, // ignored
			{At: 140 * time.Minute, Node: 2},              // interval 2: still stored locally
		},
		NumNodes: 3, NumObjects: 1, Duration: 4 * time.Hour,
	}
	m, err := Run(Config{Topo: tp, Trace: tr, Interval: time.Hour, Tlat: 150, Alpha: 1, Beta: 1}, &scripted{})
	if err != nil {
		t.Fatal(err)
	}
	// Intervals past the last access are absent: three rows, not four.
	if len(m.PerInterval) != 3 {
		t.Fatalf("PerInterval has %d rows, want 3: %+v", len(m.PerInterval), m.PerInterval)
	}
	want := []IntervalMetrics{
		{Interval: 0, Served: 1, WithinTlat: 1, QoS: 1, Creations: 0},
		{Interval: 1, Served: 1, WithinTlat: 1, QoS: 1, Creations: 1},
		{Interval: 2, Served: 2, WithinTlat: 2, QoS: 1, Creations: 1},
	}
	for i, w := range want {
		if got := m.PerInterval[i]; got != w {
			t.Errorf("interval %d: got %+v, want %+v", i, got, w)
		}
	}
	served, within, creates := 0, 0, 0
	for _, im := range m.PerInterval {
		served += im.Served
		within += im.WithinTlat
		creates += im.Creations
	}
	if served != m.Served || within != m.WithinTlat || creates != m.Creations {
		t.Errorf("per-interval sums %d/%d/%d do not match totals %d/%d/%d",
			served, within, creates, m.Served, m.WithinTlat, m.Creations)
	}
}
