package heuristics

import (
	"math"
	"testing"
	"time"

	"wideplace/internal/core"
	"wideplace/internal/sim"
	"wideplace/internal/topology"
	"wideplace/internal/workload"
)

func TestStaticAppliesSchedule(t *testing.T) {
	tp := line3(t)
	e := &sim.Env{Topo: tp, Objects: 2, Tlat: 150, Tracker: sim.NewTracker(3, 2, 0)}
	plan := [][][]bool{
		{{false, false}, {false, false}},
		{{true, false}, {false, true}},
		{{false, false}, {true, false}},
	}
	h := NewStatic(plan, time.Hour)
	if err := h.Attach(e); err != nil {
		t.Fatal(err)
	}
	h.OnIntervalStart(0, 0)
	if !e.Tracker.Stored(1, 0) || e.Tracker.Stored(1, 1) {
		t.Error("interval 0 placement wrong on node 1")
	}
	h.OnIntervalStart(1, time.Hour)
	if e.Tracker.Stored(1, 0) || !e.Tracker.Stored(1, 1) {
		t.Error("interval 1 transition wrong on node 1")
	}
	if !e.Tracker.Stored(2, 0) {
		t.Error("interval 1 placement wrong on node 2")
	}
	// Serving uses the nearest holder.
	if src := h.OnRead(2, 0, 61*time.Minute); src != 2 {
		t.Errorf("served from %d, want local replica", src)
	}
	if src := h.OnRead(2, 1, 62*time.Minute); src != 1 {
		t.Errorf("served from %d, want node 1", src)
	}
}

func TestStaticValidation(t *testing.T) {
	tp := line3(t)
	e := &sim.Env{Topo: tp, Objects: 1, Tlat: 150, Tracker: sim.NewTracker(3, 1, 0)}
	if err := NewStatic(nil, time.Hour).Attach(e); err == nil {
		t.Error("nil plan accepted")
	}
	plan := [][][]bool{{}, {}, {}}
	if err := NewStatic(plan, 0).Attach(e); err == nil {
		t.Error("zero interval accepted")
	}
}

// TestStaticClosesTheLoop is the bound/simulator cross-validation: the
// integral placement produced by the rounding algorithm, replayed in the
// simulator, must (a) meet the QoS goal as measured by the simulator and
// (b) cost exactly what core.SolutionCost computed for it.
func TestStaticClosesTheLoop(t *testing.T) {
	tp, err := topology.Generate(topology.GenOptions{N: 8, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateWeb(workload.WebOptions{
		Nodes: 8, Objects: 15, Requests: 3000, Seed: 4, Duration: 8 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := tr.Bucket(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	const tqos = 0.9
	inst, err := core.NewInstance(tp, counts, core.DefaultCost(), core.QoS(tqos, 150))
	if err != nil {
		t.Fatal(err)
	}
	bound, err := inst.LowerBound(core.General(), core.BoundOptions{SkipRounding: true})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := inst.Round(core.General(), bound.StoreFrac, core.RoundOptions{})
	if err != nil {
		t.Fatal(err)
	}

	m, err := sim.Run(sim.Config{
		Topo: tp, Trace: tr, Interval: time.Hour, Tlat: 150, Alpha: 1, Beta: 1,
	}, NewStatic(rr.Store, time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// (a) the simulator agrees the QoS goal is met per user.
	if m.MinNodeQoS < tqos {
		t.Errorf("simulated min-node QoS %.4f below goal %.2f", m.MinNodeQoS, tqos)
	}
	// (b) simulated cost equals the analytic cost of the placement. The
	// simulator integrates object-hours over wall-clock intervals of 1h,
	// matching alpha per object-interval; creations match beta.
	want := inst.SolutionCost(core.General(), rr.Store)
	if math.Abs(m.Cost-want) > 1e-6*math.Max(1, want) {
		t.Errorf("simulated cost %.3f != analytic cost %.3f", m.Cost, want)
	}
	// And it can never beat the LP bound.
	if m.Cost < bound.LPBound-1e-6 {
		t.Errorf("simulated cost %.3f below LP bound %.3f", m.Cost, bound.LPBound)
	}
}
