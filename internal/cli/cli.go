// Package cli holds small helpers shared by the command-line binaries:
// signal-driven cancellation, the common progress writer, the solver
// configuration flags and the opt-in pprof listener.
package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux
	"os"
	"os/signal"
	"syscall"

	"wideplace/internal/experiments"
	"wideplace/internal/lp"
	"wideplace/internal/scenario"
)

// ScenarioOptions adjusts a loaded scenario spec before compilation.
type ScenarioOptions struct {
	// QoS overrides the spec's QoS goal points (nil keeps the spec's).
	QoS []float64
	// Nodes rescales the spec to this node count with Spec.WithNodes
	// (0 keeps the spec's size).
	Nodes int
	// Requests overrides the workload's request volume exactly (0 keeps
	// the spec's). Applied after the Nodes rescale, so an explicit volume
	// wins over the proportional one.
	Requests int
	// Streaming forces the compile path (default StreamAuto: stream past
	// scenario.StreamingThreshold, materialize below it).
	Streaming scenario.StreamingMode
}

// ResolveScenario loads a scenario by reference (builtin name or spec
// file), applies the overrides and compiles it. Every binary resolves
// scenarios through here so the behavior — and the warning wording,
// "<tool>: scenario <name>: <warning>" — stays identical across tools.
// Warnings go to warnw; pass nil to discard them.
func ResolveScenario(ref, tool string, opts ScenarioOptions, warnw io.Writer) (*scenario.Result, error) {
	scn, err := scenario.Load(ref)
	if err != nil {
		return nil, err
	}
	if opts.QoS != nil {
		scn.QoS = opts.QoS
	}
	if opts.Nodes > 0 {
		scn = scn.WithNodes(opts.Nodes)
	}
	if opts.Requests < 0 {
		return nil, fmt.Errorf("request volume override must be positive, got %d", opts.Requests)
	}
	if opts.Requests > 0 {
		scn.Workload.Requests = opts.Requests
		if err := scn.Validate(); err != nil {
			return nil, err
		}
	}
	res, err := scenario.CompileWith(scn, scenario.CompileOptions{Streaming: opts.Streaming})
	if err != nil {
		return nil, err
	}
	if warnw != nil {
		name := res.Spec.Name
		if opts.Nodes > 0 {
			name = fmt.Sprintf("%s@%d", name, opts.Nodes)
		}
		for _, w := range res.Warnings {
			fmt.Fprintf(warnw, "%s: scenario %s: %s\n", tool, name, w)
		}
	}
	return res, nil
}

// SignalContext returns a context that is canceled on SIGINT or SIGTERM.
// The first signal cancels the context so in-flight work can drain (long
// solves observe it at the next simplex poll); a second signal kills the
// process through the default handler because stop() restores it only on
// return. Callers must call the returned stop function.
func SignalContext(parent context.Context) (context.Context, context.CancelFunc) {
	return signal.NotifyContext(parent, os.Interrupt, syscall.SIGTERM)
}

// Progress returns an experiments progress callback writing one line per
// event to w, or nil when verbose is false (discarding all events).
func Progress(verbose bool, w io.Writer) experiments.Progress {
	if !verbose {
		return nil
	}
	return func(format string, args ...interface{}) {
		fmt.Fprintf(w, format+"\n", args...)
	}
}

// LPFlags holds the solver-configuration flags shared by every
// bound-computing binary; RegisterLPFlags wires them onto a flag set and
// Resolve/Apply turn the parsed values into lp.Options fields. All three
// flags only change solver effort, never bounds, so every binary exposes
// them with identical semantics.
type LPFlags struct {
	presolve *bool
	pricing  *string
	factor   *string
}

// RegisterLPFlags registers -presolve, -pricing and -factor on fs.
func RegisterLPFlags(fs *flag.FlagSet) *LPFlags {
	return &LPFlags{
		presolve: fs.Bool("presolve", true, "reduce each LP before solving (false = solve the full model; bounds are identical either way)"),
		pricing:  fs.String("pricing", "devex", "simplex pricing rule: devex or dantzig"),
		factor:   fs.String("factor", "auto", "basis factorization backend: auto, dense or sparse"),
	}
}

// Resolve validates the parsed flag values.
func (f *LPFlags) Resolve() (lp.PresolveMode, lp.PricingRule, lp.FactorBackend, error) {
	rule, ok := lp.ParsePricingRule(*f.pricing)
	if !ok {
		return 0, 0, 0, fmt.Errorf("unknown pricing rule %q (want devex or dantzig)", *f.pricing)
	}
	backend, ok := lp.ParseFactorBackend(*f.factor)
	if !ok {
		return 0, 0, 0, fmt.Errorf("unknown factorization backend %q (want auto, dense or sparse)", *f.factor)
	}
	mode := lp.PresolveOn
	if !*f.presolve {
		mode = lp.PresolveOff
	}
	return mode, rule, backend, nil
}

// Apply validates the parsed flag values and writes them into o.
func (f *LPFlags) Apply(o *lp.Options) error {
	mode, rule, backend, err := f.Resolve()
	if err != nil {
		return err
	}
	o.Presolve = mode
	o.Pricing = rule
	o.Factor = backend
	return nil
}

// ServePprof starts net/http/pprof on its own listener when addr is
// non-empty. Profiling stays opt-in and separate from any public address:
// the handlers live on http.DefaultServeMux, which none of the binaries
// otherwise serve. Errors are reported through logf; the listener runs
// until the process exits.
func ServePprof(addr string, logf func(format string, args ...interface{})) {
	if addr == "" {
		return
	}
	go func() {
		logf("pprof listening on %s", addr)
		if err := http.ListenAndServe(addr, nil); err != nil {
			logf("pprof server: %v", err)
		}
	}()
}
