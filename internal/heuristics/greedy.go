package heuristics

import (
	"container/heap"
	"fmt"
	"time"

	"wideplace/internal/sim"
	"wideplace/internal/workload"
)

// GreedyGlobal is the storage-constrained greedy placement in the style of
// Kangasharju et al. (paper Table 3: storage constrained heuristics): every
// evaluation interval, a central coordinator re-places objects subject to a
// fixed per-node capacity, greedily maximizing the demand newly covered
// within the latency threshold. Requests are served by the nearest replica
// (global routing knowledge), falling back to the origin.
//
// With Oracle=false the coordinator sees the previous interval's demand
// (reactive); with Oracle=true it sees the current interval's (the
// prefetching variant).
type GreedyGlobal struct {
	capacity int
	demand   demandSource
	env      *sim.Env
	order    [][]int
	within   [][]int // within[m]: nodes u with latency(u, m) <= Tlat
}

var _ sim.Heuristic = (*GreedyGlobal)(nil)

// NewGreedyGlobal returns the reactive storage-constrained greedy heuristic
// with the given per-node capacity, informed by the bucketed workload.
func NewGreedyGlobal(capacity int, counts *workload.Counts) *GreedyGlobal {
	return &GreedyGlobal{capacity: capacity, demand: demandSource{counts: counts}}
}

// NewGreedyGlobalPrefetch returns the prefetching variant (current-interval
// knowledge).
func NewGreedyGlobalPrefetch(capacity int, counts *workload.Counts) *GreedyGlobal {
	return &GreedyGlobal{capacity: capacity, demand: demandSource{counts: counts, oracle: true}}
}

// Name implements sim.Heuristic.
func (g *GreedyGlobal) Name() string {
	if g.demand.oracle {
		return fmt.Sprintf("greedy-global-prefetch(c=%d)", g.capacity)
	}
	return fmt.Sprintf("greedy-global(c=%d)", g.capacity)
}

// Attach implements sim.Heuristic.
func (g *GreedyGlobal) Attach(env *sim.Env) error {
	if env == nil {
		return errNilEnv
	}
	g.env = env
	g.order = neighborOrder(env)
	g.within = make([][]int, env.Topo.N)
	for m := 0; m < env.Topo.N; m++ {
		for u := 0; u < env.Topo.N; u++ {
			if env.Topo.Latency[u][m] <= env.Tlat {
				g.within[m] = append(g.within[m], u)
			}
		}
	}
	return nil
}

// gainItem is a lazy-greedy priority queue entry.
type gainItem struct {
	node, object int
	gain         float64
}

type gainHeap []gainItem

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// OnIntervalStart implements sim.Heuristic: recompute the placement for the
// coming interval from the visible demand.
func (g *GreedyGlobal) OnIntervalStart(interval int, at time.Duration) {
	d := g.demand.at(interval)
	target := g.computePlacement(d)
	// Transition: evict replicas that are no longer wanted, create the new
	// ones.
	nN := g.env.Topo.N
	for n := 0; n < nN; n++ {
		if n == g.env.Topo.Origin {
			continue
		}
		for _, k := range g.env.Tracker.HoldersOn(n) {
			if !target[n][k] {
				g.env.Tracker.Evict(n, k, at)
			}
		}
		for k := range target[n] {
			g.env.Tracker.Create(n, k, at)
		}
	}
}

// computePlacement runs the lazy greedy: repeatedly place the (node,
// object) pair with the highest uncovered demand within the threshold,
// respecting per-node capacities.
func (g *GreedyGlobal) computePlacement(demand [][]int) []map[int]bool {
	nN := g.env.Topo.N
	target := make([]map[int]bool, nN)
	for n := range target {
		target[n] = make(map[int]bool)
	}
	if demand == nil || g.capacity == 0 {
		return target
	}
	nK := g.env.Objects
	origin := g.env.Topo.Origin
	// covered[u][k]: u's demand for k is already served within Tlat
	// (origin coverage counts).
	covered := make([][]bool, nN)
	for u := range covered {
		covered[u] = make([]bool, nK)
		if g.env.Topo.Latency[u][origin] <= g.env.Tlat {
			for k := range covered[u] {
				covered[u][k] = true
			}
		}
	}
	gain := func(n, k int) float64 {
		total := 0.0
		for _, u := range g.within[n] {
			if !covered[u][k] {
				total += float64(demand[u][k])
			}
		}
		return total
	}
	h := make(gainHeap, 0, (nN-1)*nK)
	for n := 0; n < nN; n++ {
		if n == origin {
			continue
		}
		for k := 0; k < nK; k++ {
			if v := gain(n, k); v > 0 {
				h = append(h, gainItem{node: n, object: k, gain: v})
			}
		}
	}
	heap.Init(&h)
	used := make([]int, nN)
	for h.Len() > 0 {
		item := heap.Pop(&h).(gainItem)
		if used[item.node] >= g.capacity || target[item.node][item.object] {
			continue
		}
		// Lazy re-evaluation: the stored gain may be stale.
		current := gain(item.node, item.object)
		if current <= 0 {
			continue
		}
		if current < item.gain-1e-12 {
			item.gain = current
			heap.Push(&h, item)
			continue
		}
		target[item.node][item.object] = true
		used[item.node]++
		for _, u := range g.within[item.node] {
			covered[u][item.object] = true
		}
	}
	return target
}

// OnRead implements sim.Heuristic: serve from the nearest replica (global
// routing), falling back to the origin.
func (g *GreedyGlobal) OnRead(node, object int, at time.Duration) int {
	if node == g.env.Topo.Origin {
		return node
	}
	return serveNearest(g.env, g.order, node, object, false)
}

// ProvisionedObjectHours implements sim.Heuristic: fixed capacity on every
// placement node.
func (g *GreedyGlobal) ProvisionedObjectHours(horizon time.Duration) float64 {
	return float64(g.capacity) * float64(g.env.Topo.N-1) * horizonHours(horizon)
}
