// Package atomicio writes files so that readers — including readers in
// other processes, and readers that come back after a crash — never see a
// partial file. Every write goes to a fresh temporary file in the target
// directory, is flushed to stable storage, and is renamed over the
// destination; rename within one directory is atomic on POSIX, so the
// path always holds either the old complete content or the new complete
// content. The benchmark history files (BENCH_scale.json), stress TSVs
// and the distributed result store all write through here, so an
// interrupted run can truncate nothing it did not create.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with data: write to a temporary
// file in the same directory, fsync it, rename it over path, then fsync
// the directory so the rename itself survives a crash. On any error the
// temporary file is removed and path is left untouched.
func WriteFile(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("atomicio: %w", err)
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		return fmt.Errorf("atomicio: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("atomicio: sync %s: %w", path, err)
	}
	if err := tmp.Chmod(perm); err != nil {
		return fmt.Errorf("atomicio: chmod %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("atomicio: close %s: %w", path, err)
	}
	name := tmp.Name()
	tmp = nil // the deferred cleanup must not remove a renamed file
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("atomicio: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-completed rename is durable.
// Filesystems that refuse to sync directories (some network mounts) are
// tolerated: the rename already happened, only crash durability is
// weakened.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync() //nolint:errcheck // best-effort; see above
	return nil
}
