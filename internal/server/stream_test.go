package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"wideplace/internal/controller"
)

// driftScenario is a small drift workload: a diurnal trace bucketed into
// a few control intervals, sized to replay in well under a second.
const driftScenario = `{"scenario":{"name":"drift-tiny","seed":11,
	"topology":{"model":"transit-stub","nodes":8},
	"workload":{"model":"diurnal","objects":6,"requests":1200,"horizonMillis":21600000},
	"deltaMillis":7200000,"qos":[0.9],"classes":["general"]}}`

// TestControllerStream replays a drift scenario through the streaming
// endpoint and checks the ndjson framing: one header, one StepResult per
// interval (with intervals in order and warm re-solves past the first),
// and a done trailer whose totals match the steps.
func TestControllerStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	resp, err := http.Post(ts.URL+"/controller/stream", "application/json", strings.NewReader(driftScenario))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no header line")
	}
	var hdr streamHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		t.Fatalf("header: %v", err)
	}
	if hdr.Scenario != "drift-tiny" || hdr.Nodes != 8 || hdr.Intervals < 2 {
		t.Fatalf("unexpected header %+v", hdr)
	}
	var steps []controller.StepResult
	var trailer streamTrailer
	for sc.Scan() {
		line := sc.Bytes()
		if strings.Contains(string(line), `"done"`) {
			if err := json.Unmarshal(line, &trailer); err != nil {
				t.Fatalf("trailer: %v", err)
			}
			break
		}
		var st controller.StepResult
		if err := json.Unmarshal(line, &st); err != nil {
			t.Fatalf("step line %q: %v", line, err)
		}
		steps = append(steps, st)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(steps) != hdr.Intervals {
		t.Fatalf("got %d steps, header promised %d", len(steps), hdr.Intervals)
	}
	iters := 0
	for i, st := range steps {
		if st.Interval != i {
			t.Errorf("step %d reports interval %d", i, st.Interval)
		}
		if i > 0 && !st.Warm {
			t.Errorf("interval %d did not warm re-solve", i)
		}
		iters += st.Iterations
	}
	if !trailer.Done || trailer.Intervals != len(steps) || trailer.TotalIterations != iters {
		t.Errorf("trailer %+v does not match %d steps / %d iterations", trailer, len(steps), iters)
	}
}

// TestControllerStreamRejects covers the 4xx paths: bodies without a
// scenario and out-of-range goals never reach the solver.
func TestControllerStreamRejects(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, body := range []string{
		`{}`,
		`{"tqos":0.9}`,
		strings.Replace(driftScenario, `"seed":11,`, `"seed":11,"bogus":1,`, 1),
	} {
		resp, err := http.Post(ts.URL+"/controller/stream", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/controller/stream", "application/json",
		strings.NewReader(strings.Replace(driftScenario, `"classes":["general"]`, `"classes":["general"],"x":0`, 1)+"{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown-field body: status %d, want 400", resp.StatusCode)
	}
}
