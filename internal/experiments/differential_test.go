package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"wideplace/internal/core"
	"wideplace/internal/lp"
)

// stripSolverFooter drops the "# solver:" footer lines from a TSV
// rendering. The footer's effort counters legitimately differ between
// solver configurations (that difference is the whole point of warm
// starting and presolve); the figure body — every bound the paper
// reports — must not.
func stripSolverFooter(tsv string) string {
	var out []string
	for _, line := range strings.Split(tsv, "\n") {
		if strings.HasPrefix(line, "# solver:") {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestWarmColdDifferential is the solver-speed layer's central guarantee:
// warm-start chaining, the presolve layer and compiled-problem rebinding
// change solver effort, never results. It renders the full Figure-1 grid
// (every class at every QoS goal, both workloads) under the four
// presolve × start-mode combinations and demands byte-identical TSV
// bodies and per-point objectives equal to 1e-9 across all of them.
func TestWarmColdDifferential(t *testing.T) {
	configs := []struct {
		name string
		opts Options
	}{
		{"warm-presolve", Options{Parallel: 4}},
		{"warm-plain", Options{Parallel: 4, Bound: boundWithPresolve(lp.PresolveOff)}},
		{"cold-presolve", Options{Parallel: 4, ColdStart: true}},
		{"cold-plain", Options{Parallel: 4, ColdStart: true, Bound: boundWithPresolve(lp.PresolveOff)}},
	}
	for _, kind := range []WorkloadKind{WEB, GROUP} {
		t.Run(string(kind), func(t *testing.T) {
			spec := tinySpec(kind)
			// Three ascending goals give every column two warm links.
			spec.QoSPoints = []float64{0.7, 0.8, 0.9}
			sys, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			figs := make([]*Figure, len(configs))
			tsvs := make([]string, len(configs))
			for ci, cfg := range configs {
				fig, err := Figure1(sys, cfg.opts, nil)
				if err != nil {
					t.Fatalf("%s: %v", cfg.name, err)
				}
				var buf bytes.Buffer
				if err := fig.WriteTSV(&buf); err != nil {
					t.Fatal(err)
				}
				figs[ci], tsvs[ci] = fig, buf.String()
			}

			base := stripSolverFooter(tsvs[0])
			for ci := 1; ci < len(configs); ci++ {
				if got := stripSolverFooter(tsvs[ci]); got != base {
					t.Errorf("%s TSV body differs from %s:\n--- %s ---\n%s\n--- %s ---\n%s",
						configs[ci].name, configs[0].name, configs[0].name, base, configs[ci].name, got)
				}
			}
			for si, bs := range figs[0].Series {
				for ci := 1; ci < len(configs); ci++ {
					cs := figs[ci].Series[si]
					for pi, bp := range bs.Points {
						cp := cs.Points[pi]
						if bp.Infeasible != cp.Infeasible {
							t.Errorf("%s at %g: %s infeasible=%v, %s=%v",
								bs.Name, bp.QoS, configs[0].name, bp.Infeasible, configs[ci].name, cp.Infeasible)
							continue
						}
						if math.Abs(bp.Bound-cp.Bound) > 1e-9 {
							t.Errorf("%s at %g: %s bound %.12g != %s bound %.12g",
								bs.Name, bp.QoS, configs[0].name, bp.Bound, configs[ci].name, cp.Bound)
						}
						// The rounding certificate may differ: when the LP has
						// alternate optima, different solve paths can land on
						// different optimal vertices, and rounding starts from
						// that vertex's fractional placement. Every certificate
						// must still be valid (at or above the shared bound).
						if cp.Feasible < cp.Bound-1e-6 {
							t.Errorf("%s at %g: %s feasible %g below bound %g",
								bs.Name, bp.QoS, configs[ci].name, cp.Feasible, cp.Bound)
						}
					}
				}
			}

			// Each run must actually have exercised its configuration.
			for ci, cfg := range configs {
				_, agg := figs[ci].SolverStats()
				warm := !cfg.opts.ColdStart
				if warm && agg.WarmSolves == 0 {
					t.Errorf("%s recorded no warm solves: %+v", cfg.name, agg)
				}
				if !warm && agg.WarmSolves != 0 {
					t.Errorf("%s recorded %d warm solves", cfg.name, agg.WarmSolves)
				}
				if !warm && agg.ColdSolves == 0 {
					t.Errorf("%s recorded no cold solves: %+v", cfg.name, agg)
				}
				presolve := cfg.opts.Bound.LP.Presolve != lp.PresolveOff
				if presolve && agg.PresolveRowsRemoved == 0 {
					t.Errorf("%s removed no presolve rows: %+v", cfg.name, agg)
				}
				if !presolve && (agg.PresolveRowsRemoved != 0 || agg.PresolveColsRemoved != 0) {
					t.Errorf("%s recorded presolve reductions with presolve off: %+v", cfg.name, agg)
				}
				if warm && agg.RebindSolves == 0 {
					t.Errorf("%s recorded no rebind solves: %+v", cfg.name, agg)
				}
				if !warm && agg.RebindSolves != 0 {
					t.Errorf("%s recorded %d rebind solves on the cold per-cell grid", cfg.name, agg.RebindSolves)
				}
			}
		})
	}
}

// boundWithPresolve is a shorthand for BoundOptions with one presolve
// mode and everything else defaulted.
func boundWithPresolve(mode lp.PresolveMode) (b core.BoundOptions) {
	b.LP.Presolve = mode
	return b
}

// TestFactorBackendDifferential is the factorization layer's counterpart
// of TestWarmColdDifferential: the basis factorization backend (dense
// product-form etas vs sparse LU with Forrest-Tomlin updates) changes
// solver effort, never results. It renders the full Figure-1 grid under
// the automatic choice and with each backend forced, and demands
// byte-identical TSV bodies and per-point objectives equal to 1e-9.
func TestFactorBackendDifferential(t *testing.T) {
	backends := []lp.FactorBackend{lp.FactorAuto, lp.FactorDense, lp.FactorSparse}
	for _, kind := range []WorkloadKind{WEB, GROUP} {
		t.Run(string(kind), func(t *testing.T) {
			spec := tinySpec(kind)
			spec.QoSPoints = []float64{0.7, 0.8, 0.9}
			sys, err := Build(spec)
			if err != nil {
				t.Fatal(err)
			}
			figs := make([]*Figure, len(backends))
			tsvs := make([]string, len(backends))
			for bi, backend := range backends {
				opts := Options{Parallel: 4}
				opts.Bound.LP.Factor = backend
				fig, err := Figure1(sys, opts, nil)
				if err != nil {
					t.Fatalf("%v: %v", backend, err)
				}
				var buf bytes.Buffer
				if err := fig.WriteTSV(&buf); err != nil {
					t.Fatal(err)
				}
				figs[bi], tsvs[bi] = fig, buf.String()
				if _, agg := fig.SolverStats(); agg.InitialFactorizations == 0 {
					t.Errorf("%v recorded no initial factorizations: %+v", backend, agg)
				}
			}

			base := stripSolverFooter(tsvs[0])
			for bi := 1; bi < len(backends); bi++ {
				if got := stripSolverFooter(tsvs[bi]); got != base {
					t.Errorf("%v TSV body differs from %v:\n--- %v ---\n%s\n--- %v ---\n%s",
						backends[bi], backends[0], backends[0], base, backends[bi], got)
				}
			}
			for si, bs := range figs[0].Series {
				for bi := 1; bi < len(backends); bi++ {
					cs := figs[bi].Series[si]
					for pi, bp := range bs.Points {
						cp := cs.Points[pi]
						if bp.Infeasible != cp.Infeasible {
							t.Errorf("%s at %g: %v infeasible=%v, %v=%v",
								bs.Name, bp.QoS, backends[0], bp.Infeasible, backends[bi], cp.Infeasible)
							continue
						}
						if math.Abs(bp.Bound-cp.Bound) > 1e-9 {
							t.Errorf("%s at %g: %v bound %.12g != %v bound %.12g",
								bs.Name, bp.QoS, backends[0], bp.Bound, backends[bi], cp.Bound)
						}
						if cp.Feasible < cp.Bound-1e-6 {
							t.Errorf("%s at %g: %v feasible %g below bound %g",
								bs.Name, bp.QoS, backends[bi], cp.Feasible, cp.Bound)
						}
					}
				}
			}
		})
	}
}
