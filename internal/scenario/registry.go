package scenario

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"time"

	"wideplace/internal/experiments"
	"wideplace/internal/topology"
)

// The registry maps scenario names to specs. Builtins cover the paper's
// 20-node instance (both workloads) and one representative of every new
// topology/workload family; Register adds more at runtime (tests, tools).
var (
	regMu    sync.RWMutex
	registry = make(map[string]Spec)
)

// Register adds a spec to the registry under its name. It validates first
// and refuses to overwrite, so two packages cannot silently fight over a
// name.
func Register(spec Spec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[spec.Name]; dup {
		return fmt.Errorf("scenario: %q is already registered", spec.Name)
	}
	registry[spec.Name] = spec
	return nil
}

// Get looks a scenario up by name.
func Get(name string) (Spec, error) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	if !ok {
		return Spec{}, fmt.Errorf("scenario: %q is not registered; known scenarios: %v", name, namesLocked())
	}
	return s, nil
}

// Names returns the registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Specs returns every registered spec, sorted by name.
func Specs() []Spec {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Spec, 0, len(registry))
	for _, n := range namesLocked() {
		out = append(out, registry[n])
	}
	return out
}

// Load resolves a scenario reference: a registered name first, otherwise a
// path to a JSON spec file. This is the single entry point behind every
// -scenario command-line flag.
func Load(ref string) (Spec, error) {
	regMu.RLock()
	s, ok := registry[ref]
	regMu.RUnlock()
	if ok {
		return s, nil
	}
	data, err := os.ReadFile(ref)
	if err != nil {
		if os.IsNotExist(err) {
			return Spec{}, fmt.Errorf("scenario: %q is neither a registered scenario (%v) nor a readable spec file", ref, Names())
		}
		return Spec{}, fmt.Errorf("scenario: read %s: %w", ref, err)
	}
	return Parse(data)
}

// FromPreset converts an experiments.NewSpec preset into a scenario spec.
// Compiling the result reproduces experiments.Build on the same preset
// bit for bit (same generators, same seeds, same bucketing) — the paper's
// hard-coded instance expressed in the declarative schema. The returned
// spec is named "<kind>-<scale>" and is not registered.
func FromPreset(kind experiments.WorkloadKind, scale experiments.Scale) (Spec, error) {
	es, err := experiments.NewSpec(kind, scale)
	if err != nil {
		return Spec{}, err
	}
	s := Spec{
		Name:        fmt.Sprintf("%s-%s", kind, scale),
		Description: fmt.Sprintf("paper %s workload at the %s preset scale", kind, scale),
		Seed:        es.Seed,
		Topology: TopologySpec{
			Model: TopoRandomAS,
			Nodes: es.Nodes,
		},
		Workload: WorkloadSpec{
			Model:         string(kind),
			Objects:       es.Objects,
			Requests:      es.Requests,
			HorizonMillis: es.Horizon.Milliseconds(),
		},
		TlatMillis:  es.Tlat,
		DeltaMillis: es.Delta.Milliseconds(),
		QoS:         append([]float64(nil), es.QoSPoints...),
		Zeta:        es.Zeta,
	}
	// GenerateGroup takes no Zipf exponent, so the preset's ZipfS only
	// travels for WEB (the validator rejects it on group specs).
	if kind == experiments.WEB {
		s.Workload.ZipfS = es.ZipfS
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

func mustRegister(spec Spec) {
	if err := Register(spec); err != nil {
		panic(err)
	}
}

func mustPreset(name, desc string, kind experiments.WorkloadKind, nodes int) Spec {
	s, err := FromPreset(kind, experiments.ScaleSmall)
	if err != nil {
		panic(err)
	}
	s = s.WithNodes(nodes)
	s.Name = name
	s.Description = desc
	return s
}

func init() {
	// The paper's 20-node instance, both workloads. Derived from the
	// small preset so the full Figure-1 sweep of either stays CI-sized,
	// rescaled to the paper's 20 sites.
	mustRegister(mustPreset("paper20-web",
		"paper 20-node AS topology, WEB workload (Zipf popularity, uneven sites)",
		experiments.WEB, 20))
	mustRegister(mustPreset("paper20-group",
		"paper 20-node AS topology, GROUP workload (uniform popularity, even sites)",
		experiments.GROUP, 20))
	// The paper's GROUP instance at its published volume: 16M requests
	// over 24 hours (Sec. 6). Past the streaming threshold, so compiling
	// it aggregates counts in one pass and never materializes the trace;
	// use `workload gen-bin`/`bucket` to persist or replay it.
	mustRegister(Spec{
		Name:        "paper20-group-full",
		Description: "paper 20-node GROUP workload at the full published 16M-request volume (streams)",
		Seed:        1,
		Topology:    TopologySpec{Model: TopoRandomAS, Nodes: 20},
		Workload: WorkloadSpec{
			Model: WorkGroup, Objects: 1000, Requests: 16_000_000,
			HorizonMillis: (24 * time.Hour).Milliseconds(),
		},
		QoS:  []float64{0.95, 0.99, 0.999, 0.9999, 0.99999},
		Zeta: 10000,
	})

	// One representative per new family. The structural families pin the
	// classes that are meaningful at scale and demand strict feasibility;
	// the workload families keep the Figure-1 default set and tolerate
	// truncating caching curves, exactly like the paper's own figures.
	mustRegister(Spec{
		Name:        "transit-stub-100",
		Description: "100-site transit-stub internet: fast backbone, slow access links",
		Seed:        42,
		Topology:    TopologySpec{Model: TopoTransitStub, Nodes: 100},
		Workload: WorkloadSpec{
			Model: WorkWeb, Objects: 16, Requests: 20000,
			HorizonMillis: (8 * time.Hour).Milliseconds(),
		},
		DeltaMillis:       (2 * time.Hour).Milliseconds(),
		QoS:               []float64{0.95, 0.99},
		Classes:           []string{"general", "storage-constrained", "replica-constrained"},
		Zeta:              2000,
		RequireAllClasses: true,
	})
	mustRegister(Spec{
		Name:        "remote-office-clustered",
		Description: "clustered remote offices: LAN clusters behind WAN uplinks to headquarters",
		Seed:        42,
		Topology:    TopologySpec{Model: TopoRemoteOffice, Nodes: 25, Clusters: 5},
		Workload: WorkloadSpec{
			Model: WorkGroup, Objects: 16, Requests: 16000,
			HorizonMillis: (8 * time.Hour).Milliseconds(),
		},
		DeltaMillis:       (2 * time.Hour).Milliseconds(),
		QoS:               []float64{0.95, 0.99},
		Classes:           []string{"general", "storage-constrained", "replica-constrained"},
		Zeta:              2000,
		RequireAllClasses: true,
	})
	// The tree family: the only instances with an external ground truth.
	// One evaluation interval (delta = horizon) and a Tqos = 1 goal keep
	// them inside the exact oracle's scope (internal/exact.SolveInstance),
	// so every bound on them is checked against a provably optimal cost.
	mustRegister(Spec{
		Name:        "tree-kary-63",
		Description: "63-site balanced binary tree; single interval, Tqos=1, exactly solvable",
		Seed:        42,
		Topology:    TopologySpec{Model: TopoTree, Nodes: 63, Shape: topology.TreeKAry, Arity: 2},
		Workload: WorkloadSpec{
			Model: WorkWeb, Objects: 12, Requests: 12000,
			HorizonMillis: (6 * time.Hour).Milliseconds(),
		},
		DeltaMillis:       (6 * time.Hour).Milliseconds(),
		QoS:               []float64{1.0},
		Classes:           []string{"general", "tree-upwards"},
		RequireAllClasses: true,
	})
	mustRegister(Spec{
		Name:        "tree-random-100",
		Description: "100-site random-attachment tree; single interval, Tqos=1, exactly solvable",
		Seed:        7,
		Topology:    TopologySpec{Model: TopoTree, Nodes: 100, Shape: topology.TreeRandom},
		Workload: WorkloadSpec{
			Model: WorkWeb, Objects: 10, Requests: 10000,
			HorizonMillis: (6 * time.Hour).Milliseconds(),
		},
		DeltaMillis:       (6 * time.Hour).Milliseconds(),
		QoS:               []float64{1.0},
		Classes:           []string{"general", "tree-upwards"},
		RequireAllClasses: true,
	})
	mustRegister(Spec{
		Name:        "flash-crowd",
		Description: "WEB baseline with a global flash crowd on a hot object set",
		Seed:        7,
		Topology:    TopologySpec{Model: TopoRandomAS, Nodes: 20},
		Workload: WorkloadSpec{
			Model: WorkFlashCrowd, Objects: 24, Requests: 12000,
			HorizonMillis: (12 * time.Hour).Milliseconds(),
			CrowdShare:    0.4, HotObjects: 3,
		},
		QoS:  []float64{0.9, 0.95, 0.99},
		Zeta: 1000,
	})
	mustRegister(Spec{
		Name:        "diurnal-shift",
		Description: "demand circles four time zones over one day; hot set drifts with it",
		Seed:        7,
		Topology:    TopologySpec{Model: TopoTransitStub, Nodes: 24},
		Workload: WorkloadSpec{
			Model: WorkDiurnal, Objects: 24, Requests: 16000,
			HorizonMillis: (24 * time.Hour).Milliseconds(),
			Zones:         4, ObjectDrift: true,
		},
		DeltaMillis: (3 * time.Hour).Milliseconds(),
		QoS:         []float64{0.9, 0.95, 0.99},
		Zeta:        1000,
	})
}
