package lp

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// roundTripObjective writes a model to MPS, reads it back, solves both and
// compares optima.
func roundTripObjective(t *testing.T, m *Model) {
	t.Helper()
	want, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatalf("solve original: %v", err)
	}
	var buf bytes.Buffer
	if err := m.WriteMPS(&buf, "t"); err != nil {
		t.Fatalf("write: %v", err)
	}
	m2, err := ReadMPS(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	got, err := SolveModel(m2, Options{})
	if err != nil {
		t.Fatalf("solve round-trip: %v", err)
	}
	// MPS is always minimize; a Maximize original compares negated.
	wantObj := want.Objective
	if m.sense == Maximize {
		wantObj = -wantObj
	}
	if math.Abs(got.Objective-wantObj) > 1e-6*math.Max(1, math.Abs(wantObj)) {
		t.Errorf("objective after round-trip = %g, want %g", got.Objective, wantObj)
	}
}

func TestMPSRoundTripSimple(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar(0, Inf, 3, "x")
	y := m.AddVar(0, Inf, 5, "y")
	m.AddLE([]Coef{{x, 1}}, 4, "c1")
	m.AddLE([]Coef{{y, 2}}, 12, "c2")
	m.AddLE([]Coef{{x, 3}, {y, 2}}, 18, "c3")
	roundTripObjective(t, m)
}

func TestMPSRoundTripBoundsAndRanges(t *testing.T) {
	m := NewModel(Minimize)
	a := m.AddVar(-2, 5, 1, "a")
	b := m.AddVar(math.Inf(-1), Inf, 2, "b") // free
	c := m.AddVar(3, 3, -1, "c")             // fixed
	d := m.AddVar(math.Inf(-1), 4, 0.5, "d") // MI + UP
	m.AddRange([]Coef{{a, 1}, {b, 1}}, 1, 6, "rng")
	m.AddEQ([]Coef{{c, 1}, {d, 2}}, 7, "eq")
	m.AddGE([]Coef{{a, 2}, {d, -1}}, -3, "ge")
	roundTripObjective(t, m)
}

func TestMPSRoundTripRandom(t *testing.T) {
	for seed := uint64(300); seed < 315; seed++ {
		rng := newTestRand(seed)
		m := randLP(rng, 8+rng.intn(15), 6+rng.intn(15))
		roundTripObjective(t, m)
	}
}

func TestReadMPSKnownProblem(t *testing.T) {
	// AFIRO-style toy written by hand:
	// min -x - 2y s.t. x + y <= 4, x - y >= -2, 0<=x, 0<=y<=3.
	// Optimum: y=3, x=1 -> -7.
	src := `* comment
NAME TOY
ROWS
 N COST
 L LIM1
 G LIM2
COLUMNS
 X COST -1 LIM1 1
 X LIM2 1
 Y COST -2 LIM1 1
 Y LIM2 -1
RHS
 RHS LIM1 4 LIM2 -2
BOUNDS
 UP BND Y 3
ENDATA
`
	m, err := ReadMPS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-(-7)) > 1e-6 {
		t.Errorf("objective = %g, want -7", sol.Objective)
	}
}

func TestReadMPSErrors(t *testing.T) {
	cases := []string{
		"ROWS\n L c1\nCOLUMNS\n x nosuchrow 1\nENDATA\n",
		"ROWS\n L c1\nCOLUMNS\n x c1 notanumber\nENDATA\n",
		"ROWS\n Z c1\nENDATA\n",
		"COLUMNS\n x c1 1\nENDATA\n", // data before ROWS: unknown row
	}
	for i, src := range cases {
		m, err := ReadMPS(strings.NewReader(src))
		if err == nil {
			// Some malformed inputs surface at Compile instead.
			if _, cerr := m.Compile(); cerr == nil {
				t.Errorf("case %d: malformed MPS accepted", i)
			}
		}
	}
}

func TestWriteMPSMentionsSections(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar(0, 1, 1, "x")
	m.AddRange([]Coef{{x, 1}}, 0.2, 0.8, "r")
	var buf bytes.Buffer
	if err := m.WriteMPS(&buf, "demo"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"NAME demo", "ROWS", "COLUMNS", "RHS", "RANGES", "BOUNDS", "ENDATA"} {
		if !strings.Contains(out, want) {
			t.Errorf("MPS output missing %q:\n%s", want, out)
		}
	}
}
