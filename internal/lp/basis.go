package lp

import "math"

// Basis is a snapshot of a simplex basis: the basic column occupying each
// row position plus the bound status of every column (structural and
// slack). A Basis is produced by a successful solve (Solution.Basis) and
// can seed a later solve of a same-shaped problem through Options.Start —
// the classic warm start for parameter sweeps where only the right-hand
// side moves between solves.
//
// A Basis is immutable once created and safe to share across goroutines;
// the solver copies it on installation and never writes through it.
type Basis struct {
	numRows int
	numCols int // structural + slack columns
	basic   []int
	status  []colStatus
}

// NumRows reports the number of constraint rows the basis was built for.
func (b *Basis) NumRows() int { return b.numRows }

// NumCols reports the total column count (structural + slack) the basis
// was built for.
func (b *Basis) NumCols() int { return b.numCols }

// compatibleWith reports whether the snapshot can seed a solve of p: the
// shape must match exactly and the snapshot must be internally consistent
// (every basic column in range and unique, statuses agreeing with the
// basic set). A nil Basis is never compatible. Callers fall back to the
// crash basis on false; a stale or corrupted snapshot can cost a cold
// start but never a wrong answer.
func (b *Basis) compatibleWith(p *Problem) bool {
	if b == nil || b.numRows != p.numRows || b.numCols != p.numStruct+p.numRows {
		return false
	}
	if len(b.basic) != b.numRows || len(b.status) != b.numCols {
		return false
	}
	seen := make([]bool, b.numCols)
	for _, q := range b.basic {
		if q < 0 || q >= b.numCols || seen[q] {
			return false
		}
		seen[q] = true
		if b.status[q] != basic {
			return false
		}
	}
	nBasic := 0
	for _, st := range b.status {
		if st == basic {
			nBasic++
		}
	}
	return nBasic == b.numRows
}

// snapshotBasis captures the solver's final basis for Solution.Basis.
func (s *simplex) snapshotBasis() *Basis {
	return &Basis{
		numRows: s.m,
		numCols: s.n,
		basic:   append([]int(nil), s.basis...),
		status:  append([]colStatus(nil), s.status...),
	}
}

// installBasis seeds the solver state from a compatible snapshot. Nonbasic
// statuses that the current problem's bounds make meaningless (a snapshot
// taken under different bounds may rest a column on a bound that is now
// infinite) are repaired to the crash-start status of that column, so the
// installed point always respects the bounds of the problem being solved.
func (s *simplex) installBasis(b *Basis) {
	for j := 0; j < s.n; j++ {
		st := b.status[j]
		if st == basic {
			continue // assigned from b.basic below
		}
		lo, hi := s.p.lo[j], s.p.hi[j]
		switch st {
		case nonbasicLower:
			if math.IsInf(lo, -1) {
				st = s.startStatus(j)
			}
		case nonbasicUpper:
			if math.IsInf(hi, 1) {
				st = s.startStatus(j)
			}
		case nonbasicFree:
			if !math.IsInf(lo, -1) || !math.IsInf(hi, 1) {
				st = s.startStatus(j)
			}
		}
		s.status[j] = st
		switch st {
		case nonbasicLower:
			s.x[j] = s.p.lo[j]
		case nonbasicUpper:
			s.x[j] = s.p.hi[j]
		default:
			s.x[j] = 0
		}
	}
	copy(s.basis, b.basic)
	for _, q := range b.basic {
		s.status[q] = basic
	}
}

// installCrashBasis seeds the solver with the all-slack crash basis:
// structural variables rest at a bound, one slack is basic per row.
func (s *simplex) installCrashBasis() {
	for j := 0; j < s.n; j++ {
		s.status[j] = s.startStatus(j)
		s.x[j] = s.startValue(j)
	}
	for i := 0; i < s.m; i++ {
		q := s.p.numStruct + i
		s.basis[i] = q
		s.status[q] = basic
	}
}

// repairBasis patches a singular warm basis in place: the slack of the
// unpivoted row enters at the dependent position and the displaced column
// rests at its crash-start bound. The slack column is a unit vector on a
// row nothing in the basis pivoted, so the swap strictly reduces the
// dependency count. It reports false when the slack is already basic —
// then the dependency is not the simple column-versus-slack kind this
// repair removes, and the caller falls back to the crash basis.
func (s *simplex) repairBasis(sing *singularBasisError) bool {
	slack := s.p.numStruct + sing.row
	if sing.row < 0 || s.status[slack] == basic {
		return false
	}
	leave := s.basis[sing.pos]
	s.status[leave] = s.startStatus(leave)
	s.x[leave] = s.startValue(leave)
	s.basis[sing.pos] = slack
	s.status[slack] = basic
	return true
}
