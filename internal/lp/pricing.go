package lp

// PricingRule selects the simplex entering-column (pricing) rule.
type PricingRule int

// Available pricing rules. The zero value resolves to the default rule so
// a zero Options struct always gets the recommended configuration.
const (
	// PricingAuto resolves to the default rule (currently devex).
	PricingAuto PricingRule = iota
	// PricingDevex prices with reference-framework devex weights: each
	// candidate's reduced cost is normalized by an evolving estimate of
	// its steepest-edge norm, which steers the solver away from the short
	// degenerate steps that plain Dantzig pricing is drawn to.
	PricingDevex
	// PricingDantzig restores the classic rule: largest reduced cost over
	// a rotating partial-pricing window (Options.SectionSize).
	PricingDantzig
)

// String names the rule as it appears in Stats.PricingRule and reports.
func (r PricingRule) String() string {
	switch r {
	case PricingDevex:
		return "devex"
	case PricingDantzig:
		return "dantzig"
	default:
		return "auto"
	}
}

// ParsePricingRule maps a command-line flag value onto a rule.
func ParsePricingRule(s string) (PricingRule, bool) {
	switch s {
	case "", "auto":
		return PricingAuto, true
	case "devex":
		return PricingDevex, true
	case "dantzig":
		return PricingDantzig, true
	default:
		return PricingAuto, false
	}
}

// devexResetLimit caps the devex weights: when any weight outgrows it the
// reference framework has drifted too far and all weights reset to 1.
const devexResetLimit = 1e12

// initDevex allocates and resets the devex state. Called once per solve
// when the devex rule is active.
func (s *simplex) initDevex() {
	s.gamma = make([]float64, s.n)
	s.beta = make([]float64, s.m)
	s.resetDevex()
}

// resetDevex restarts the reference framework: every column's weight
// becomes 1 (the framework is the current nonbasic set).
func (s *simplex) resetDevex() {
	for j := range s.gamma {
		s.gamma[j] = 1
	}
}

// devexPrice selects the entering column by the largest d_j^2 / gamma_j
// ratio over all eligible columns. Unlike partial Dantzig pricing it
// always scans the full column set: the weights are only meaningful
// relative to each other, and the scan shares the duals already computed
// for this iteration, so the extra cost is one pass over the matrix.
func (s *simplex) devexPrice(phase1 bool) (entering int, dir float64) {
	tol := s.opts.Tol
	bestJ, bestRank, bestDir := -1, 0.0, 0.0
	for j := 0; j < s.n; j++ {
		sc, dj := s.score(j, phase1)
		if sc <= tol {
			continue
		}
		if rank := sc * sc / s.gamma[j]; rank > bestRank {
			bestJ, bestRank, bestDir = j, rank, dj
		}
	}
	s.stats.PricingScans += int64(s.n)
	return bestJ, bestDir
}

// devexUpdate refreshes the weights after a basis change: entering column
// q pivoted in at basis position pos (leaving column leave). It must run
// before the factorization absorbs the pivot, because the update needs
// the pivot row of the outgoing basis inverse. s.w still holds the FTRAN
// image of the entering column.
func (s *simplex) devexUpdate(q, pos, leave int) {
	aq := s.w[pos]
	if aq == 0 {
		return
	}
	// beta = e_pos^T B^-1: the pivot row of the pre-pivot basis inverse.
	for i := range s.beta {
		s.beta[i] = 0
	}
	s.beta[pos] = 1
	s.fac.Btran(s.beta)
	// For every nonbasic column j with pivot-row entry alpha_j, the new
	// weight is max(gamma_j, (alpha_j/alpha_q)^2 * gamma_q).
	scale := s.gamma[q] / (aq * aq)
	maxG := 1.0
	for j := 0; j < s.n; j++ {
		if s.status[j] == basic || j == q {
			continue
		}
		ri, rv := s.p.cols.Col(j)
		alpha := 0.0
		for k, r := range ri {
			alpha += s.beta[r] * rv[k]
		}
		if alpha != 0 {
			if cand := alpha * alpha * scale; cand > s.gamma[j] {
				s.gamma[j] = cand
			}
		}
		if s.gamma[j] > maxG {
			maxG = s.gamma[j]
		}
	}
	// The leaving column's weight estimates its steepest-edge norm in the
	// new basis; the entering column becomes basic and resets.
	g := scale
	if g < 1 {
		g = 1
	}
	if g > s.gamma[leave] {
		s.gamma[leave] = g
	}
	s.gamma[q] = 1
	if maxG > devexResetLimit {
		s.resetDevex()
	}
}
