package core

import (
	"errors"
	"math"
)

// This file implements the paper's domain-specific greedy rounding
// algorithm (Appendix C, Figures 5-7). The LP relaxation leaves fractional
// store values; the algorithm alternates between rounding one value up
// (chosen by lowest cost/reward ratio) and rounding down as many values as
// possible without violating the QoS goal, then adds the storage/replica
// capacity top-ups required by the SC/RC class constraints.
//
// Two deliberate deviations from the figures, documented here and in
// EXPERIMENTS.md:
//
//   - The marginal replica-creation cost of a rounding step is computed
//     directly as the change of beta*max(0, store_i - store_{i-1}) summed
//     over the affected intervals, which reproduces the figures' four-case
//     analysis without transcribing their (typeset-mangled) signs.
//   - QoS impact is tracked exactly per node (the paper notes per-user
//     goals require exactly this) instead of through the aggregated
//     estimate of Figure 6.
//
// The algorithm additionally refuses round-steps that would violate the
// activity-history/reactive chain constraint (store may only rise at
// intervals where creation is allowed); Proposition 1 of the paper makes
// the weaker observation that zeros stay zeros, which alone does not
// protect interior points of a fractional storage run.

// RoundOptions configures Round.
type RoundOptions struct {
	// RunLength enables the run-length optimization of Appendix C: runs of
	// consecutive intervals holding the same fractional value are rounded
	// as one unit.
	RunLength bool
}

// RoundResult is the feasible integer solution certified by the rounding.
type RoundResult struct {
	// Cost is the full cost of the feasible solution, including SC/RC
	// capacity top-ups.
	Cost float64
	// Store is the integral placement: Store[n][i][k] reports whether node
	// n holds object k during interval i (origin row all false; its
	// permanent copies are implicit).
	Store [][][]bool
	// UpSteps and DownSteps count the rounding operations performed.
	UpSteps, DownSteps int
}

// ErrRoundingStuck is returned when no legal round-up exists while
// fractional values remain (this indicates an internal inconsistency).
var ErrRoundingStuck = errors.New("core: rounding cannot make progress")

type rounder struct {
	in    *Instance
	class *Class
	opts  RoundOptions

	nN, nI, nK int
	origin     int

	store    [][][]float64 // current values (origin row unused)
	createOK [][][]bool    // nil rows mean always allowed
	reach    [][]int
	servedBy [][]int // reverse of reach
	origCov  []bool

	// Coverage bookkeeping per user node.
	mass     [][][]float64 // sum of reachable store values, per (u,i,k)
	intMass  [][][]int16   // count of reachable integral-1 stores
	covered  []float64     // current fractionally covered demand per node
	required []float64     // Tqos * R_n per node (minus origin constant)
	totalCov float64       // aggregate covered demand (Overall scope)
	totalReq float64

	ups, downs int
}

// Round converts the fractional LP store solution into a feasible integral
// solution and returns its cost. store is indexed [n][i][k] with the origin
// row ignored.
func (in *Instance) Round(class *Class, store [][][]float64, opts RoundOptions) (*RoundResult, error) {
	if in.Goal.Kind != QoSGoal {
		return nil, errors.New("core: rounding supports the QoS goal metric")
	}
	nN, nI, nK := in.Dims()
	r := &rounder{
		in: in, class: class, opts: opts,
		nN: nN, nI: nI, nK: nK, origin: in.Topo.Origin,
		store:    store,
		createOK: in.createAllowed(class),
		reach:    in.Reach(class),
		origCov:  make([]bool, nN),
	}
	for n := 0; n < nN; n++ {
		r.origCov[n] = in.originReachable(class, n)
	}
	r.servedBy = make([][]int, nN)
	for u := 0; u < nN; u++ {
		for _, m := range r.reach[u] {
			r.servedBy[m] = append(r.servedBy[m], u)
		}
	}
	r.initCoverage()
	if err := r.run(); err != nil {
		return nil, err
	}
	res := &RoundResult{
		Store:     make([][][]bool, nN),
		UpSteps:   r.ups,
		DownSteps: r.downs,
	}
	for n := 0; n < nN; n++ {
		res.Store[n] = make([][]bool, nI)
		for i := 0; i < nI; i++ {
			res.Store[n][i] = make([]bool, nK)
			if n == r.origin {
				continue
			}
			for k := 0; k < nK; k++ {
				res.Store[n][i][k] = r.store[n][i][k] > 0.5
			}
		}
	}
	res.Cost = in.SolutionCost(class, res.Store)
	return res, nil
}

func (r *rounder) initCoverage() {
	nN, nI, nK := r.nN, r.nI, r.nK
	r.mass = allocF3(nN, nI, nK)
	r.intMass = allocI3(nN, nI, nK)
	r.covered = make([]float64, nN)
	r.required = make([]float64, nN)
	for u := 0; u < nN; u++ {
		total := 0.0
		for i := 0; i < nI; i++ {
			for k := 0; k < nK; k++ {
				rd := float64(r.in.Counts.Reads[u][i][k])
				if rd == 0 {
					continue
				}
				total += rd
				if r.origCov[u] {
					continue // permanently covered; not tracked
				}
				m := 0.0
				var im int16
				for _, mm := range r.reach[u] {
					v := r.store[mm][i][k]
					m += v
					if v >= 1 {
						im++
					}
				}
				r.mass[u][i][k] = m
				r.intMass[u][i][k] = im
				r.covered[u] += rd * math.Min(1, m)
			}
		}
		req := r.in.Goal.Tqos * total
		if r.origCov[u] {
			req = 0 // fully covered by the origin
		}
		r.required[u] = req
		r.totalReq += req
		r.totalCov += r.covered[u]
	}
}

// candidate identifies a run of fractional values at node n, object k,
// intervals [i0, i1].
type candidate struct {
	n, k, i0, i1 int
}

func (r *rounder) fractional(n, i, k int) bool {
	v := r.store[n][i][k]
	return v > 1e-9 && v < 1-1e-9
}

// candidates enumerates the current fractional runs.
func (r *rounder) candidates() []candidate {
	var out []candidate
	for n := 0; n < r.nN; n++ {
		if n == r.origin {
			continue
		}
		for k := 0; k < r.nK; k++ {
			for i := 0; i < r.nI; i++ {
				if !r.fractional(n, i, k) {
					continue
				}
				i1 := i
				if r.opts.RunLength {
					v := r.store[n][i][k]
					for i1+1 < r.nI && r.store[n][i1+1][k] == v {
						i1++
					}
				}
				out = append(out, candidate{n: n, k: k, i0: i, i1: i1})
				i = i1
			}
		}
	}
	return out
}

// prevVal and succVal give the neighboring interval values with the
// paper's corner-case conventions (prev = 0 before the first interval,
// succ = value after the last).
func (r *rounder) prevVal(c candidate) float64 {
	if c.i0 == 0 {
		if r.in.initiallyStored(c.n, c.k) {
			return 1
		}
		return 0
	}
	return r.store[c.n][c.i0-1][c.k]
}

func (r *rounder) succVal(c candidate) float64 {
	if c.i1 == r.nI-1 {
		return r.store[c.n][c.i1][c.k]
	}
	return r.store[c.n][c.i1+1][c.k]
}

// creationDelta returns the change in beta-weighted creation cost when the
// run's value changes from val to target.
func (r *rounder) creationDelta(c candidate, target float64) float64 {
	val := r.store[c.n][c.i0][c.k]
	prev, succ := r.prevVal(c), r.succVal(c)
	before := math.Max(0, val-prev) + math.Max(0, succ-val)
	after := math.Max(0, target-prev) + math.Max(0, succ-target)
	if c.i1 == r.nI-1 {
		// succ mirrors the value itself at the horizon's end: only the
		// rise at i0 matters.
		before = math.Max(0, val-prev)
		after = math.Max(0, target-prev)
	}
	return r.in.Cost.Beta * (after - before)
}

// stepCost returns the full cost delta of moving the run to target,
// including storage and the update-cost extension.
func (r *rounder) stepCost(c candidate, target float64) float64 {
	val := r.store[c.n][c.i0][c.k]
	intervals := float64(c.i1 - c.i0 + 1)
	d := r.in.Cost.Alpha * intervals * (target - val)
	if r.in.Cost.Delta > 0 {
		for i := c.i0; i <= c.i1; i++ {
			w := 0.0
			for n := 0; n < r.nN; n++ {
				w += float64(r.in.Counts.Writes[n][i][c.k])
			}
			d += r.in.Cost.Delta * w * (target - val)
		}
	}
	return d + r.creationDelta(c, target)
}

// reward is the paper's reward metric: demand of reachable users that have
// no integral replica coverage for (i, k) yet.
func (r *rounder) reward(c candidate) float64 {
	total := 0.0
	for _, u := range r.servedBy[c.n] {
		if r.origCov[u] {
			continue
		}
		for i := c.i0; i <= c.i1; i++ {
			if r.intMass[u][i][c.k] == 0 {
				total += float64(r.in.Counts.Reads[u][i][c.k])
			}
		}
	}
	return total
}

// qosDelta returns the exact per-node change of covered demand when the
// run's value moves from val to target. The result maps only nodes with a
// nonzero change.
func (r *rounder) qosDelta(c candidate, target float64) map[int]float64 {
	val := r.store[c.n][c.i0][c.k]
	d := target - val
	out := make(map[int]float64)
	for _, u := range r.servedBy[c.n] {
		if r.origCov[u] {
			continue
		}
		delta := 0.0
		for i := c.i0; i <= c.i1; i++ {
			rd := float64(r.in.Counts.Reads[u][i][c.k])
			if rd == 0 {
				continue
			}
			m := r.mass[u][i][c.k]
			delta += rd * (math.Min(1, m+d) - math.Min(1, m))
		}
		if delta != 0 {
			out[u] = delta
		}
	}
	return out
}

// apply moves the run to target and updates all bookkeeping.
func (r *rounder) apply(c candidate, target float64) {
	val := r.store[c.n][c.i0][c.k]
	d := target - val
	for i := c.i0; i <= c.i1; i++ {
		r.store[c.n][i][c.k] = target
	}
	for _, u := range r.servedBy[c.n] {
		if r.origCov[u] {
			continue
		}
		for i := c.i0; i <= c.i1; i++ {
			m := r.mass[u][i][c.k]
			r.mass[u][i][c.k] = m + d
			rd := float64(r.in.Counts.Reads[u][i][c.k])
			if rd != 0 {
				delta := rd * (math.Min(1, m+d) - math.Min(1, m))
				r.covered[u] += delta
				r.totalCov += delta
			}
			if target >= 1 && val < 1 {
				r.intMass[u][i][c.k]++
			} else if target < 1 && val >= 1 {
				r.intMass[u][i][c.k]--
			}
		}
	}
}

// chainOKUp reports whether raising the run to 1 keeps the activity-history
// chain constraint satisfiable: the value may only rise at an interval
// where creation is allowed, unless the previous interval already holds a
// full replica.
func (r *rounder) chainOKUp(c candidate) bool {
	if r.createOK[c.n] == nil {
		return true
	}
	if r.createOK[c.n][c.i0][c.k] {
		return true
	}
	return r.prevVal(c) >= 1-1e-9
}

// chainOKDown reports whether dropping the run to 0 keeps the successor
// interval's chain constraint satisfiable.
func (r *rounder) chainOKDown(c candidate) bool {
	if r.createOK[c.n] == nil {
		return true
	}
	next := c.i1 + 1
	if next >= r.nI {
		return true
	}
	if r.store[c.n][next][c.k] <= 1e-9 {
		return true
	}
	return r.createOK[c.n][next][c.k]
}

// qosOKAfter reports whether the QoS goal still holds after applying the
// given per-node coverage deltas.
func (r *rounder) qosOKAfter(deltas map[int]float64) bool {
	const eps = 1e-7
	if r.in.Goal.Scope == Overall {
		total := 0.0
		for _, d := range deltas {
			total += d
		}
		return r.totalCov+total >= r.totalReq-eps
	}
	for u, d := range deltas {
		if r.covered[u]+d < r.required[u]-eps*math.Max(1, r.required[u]) {
			return false
		}
	}
	return true
}

// run executes the main loop of Figure 5.
func (r *rounder) run() error {
	for {
		cands := r.candidates()
		if len(cands) == 0 {
			return nil
		}
		// Round up: lowest cost/reward ratio; ties and zero rewards fall
		// back to lowest cost.
		best, bestRatio, bestCost := -1, math.Inf(1), math.Inf(1)
		for idx, c := range cands {
			if !r.chainOKUp(c) {
				continue
			}
			cost := r.stepCost(c, 1)
			rew := r.reward(c)
			ratio := math.Inf(1)
			if rew > 0 {
				ratio = cost / rew
			}
			if ratio < bestRatio-1e-12 ||
				(ratio <= bestRatio+1e-12 && cost < bestCost) {
				best, bestRatio, bestCost = idx, ratio, cost
			}
		}
		if best < 0 {
			return ErrRoundingStuck
		}
		r.apply(cands[best], 1)
		r.ups++

		// Round down repeatedly while some candidate keeps QoS intact.
		for {
			cands = r.candidates()
			downIdx, downScore := -1, math.Inf(-1)
			for idx, c := range cands {
				if !r.chainOKDown(c) {
					continue
				}
				cost := r.stepCost(c, 0)
				if cost >= -1e-12 {
					continue // no savings
				}
				deltas := r.qosDelta(c, 0)
				if !r.qosOKAfter(deltas) {
					continue
				}
				rew := r.reward(c)
				var score float64
				if rew == 0 {
					score = math.Inf(1) // pure win: costs nothing in QoS
				} else {
					score = -cost / rew
				}
				if score > downScore {
					downIdx, downScore = idx, score
				}
			}
			if downIdx < 0 {
				break
			}
			r.apply(cands[downIdx], 0)
			r.downs++
		}
	}
}

// SolutionCost computes the full MC-PERF cost of an integral placement,
// including the storage/replica top-ups implied by the class's SC/RC
// constraints (Figure 5's closing accounting) and the open-node cost.
func (in *Instance) SolutionCost(class *Class, store [][][]bool) float64 {
	nN, nI, nK := in.Dims()
	origin := in.Topo.Origin
	cost := 0.0
	// Per-(interval, object) write totals for the update-cost term.
	var writeIK [][]float64
	if in.Cost.Delta > 0 {
		writeIK = make([][]float64, nI)
		for i := 0; i < nI; i++ {
			writeIK[i] = make([]float64, nK)
			for n := 0; n < nN; n++ {
				for k := 0; k < nK; k++ {
					writeIK[i][k] += float64(in.Counts.Writes[n][i][k])
				}
			}
		}
	}
	for n := 0; n < nN; n++ {
		if n == origin {
			continue
		}
		used := false
		for i := 0; i < nI; i++ {
			for k := 0; k < nK; k++ {
				if !store[n][i][k] {
					continue
				}
				used = true
				cost += in.Cost.Alpha
				if writeIK != nil {
					cost += in.Cost.Delta * writeIK[i][k]
				}
				rose := i == 0 && !in.initiallyStored(n, k) ||
					i > 0 && !store[n][i-1][k]
				if rose {
					cost += in.Cost.Beta
				}
			}
		}
		if used && in.Cost.Zeta > 0 {
			cost += in.Cost.Zeta
		}
	}
	if in.Cost.Gamma > 0 {
		cost += in.Cost.Gamma * in.uncoveredReads(class, store)
	}
	cost += in.storageTopUp(class, store)
	cost += in.replicaTopUp(class, store)
	return cost
}

// uncoveredReads counts reads not served within the threshold by the
// placement (for the best-effort penalty term).
func (in *Instance) uncoveredReads(class *Class, store [][][]bool) float64 {
	nN, nI, nK := in.Dims()
	reach := in.Reach(class)
	total := 0.0
	for u := 0; u < nN; u++ {
		if in.originReachable(class, u) {
			continue
		}
		for i := 0; i < nI; i++ {
			for k := 0; k < nK; k++ {
				rd := in.Counts.Reads[u][i][k]
				if rd == 0 {
					continue
				}
				cov := false
				for _, m := range reach[u] {
					if store[m][i][k] {
						cov = true
						break
					}
				}
				if !cov {
					total += float64(rd)
				}
			}
		}
	}
	return total
}

// storageTopUp returns the extra cost needed to honor the SC constraint:
// every node (every interval) must use the class's fixed capacity.
func (in *Instance) storageTopUp(class *Class, store [][][]bool) float64 {
	if class == nil || class.Storage == NoConstraint {
		return 0
	}
	nN, nI, _ := in.Dims()
	origin := in.Topo.Origin
	// cap[n][i]: objects stored.
	capNI := make([][]int, nN)
	cmax := 0
	nodeMax := make([]int, nN)
	for n := 0; n < nN; n++ {
		if n == origin {
			continue
		}
		capNI[n] = make([]int, nI)
		for i := 0; i < nI; i++ {
			c := 0
			for _, s := range store[n][i] {
				if s {
					c++
				}
			}
			capNI[n][i] = c
			if c > cmax {
				cmax = c
			}
			if c > nodeMax[n] {
				nodeMax[n] = c
			}
		}
	}
	cost := 0.0
	for n := 0; n < nN; n++ {
		if n == origin {
			continue
		}
		target := cmax
		if class.Storage == PerEntity {
			target = nodeMax[n]
		}
		for i := 0; i < nI; i++ {
			cost += in.Cost.Alpha * float64(target-capNI[n][i])
		}
		if class.Storage == Uniform {
			cost += in.Cost.Beta * float64(cmax-nodeMax[n])
		}
	}
	return cost
}

// replicaTopUp returns the extra cost needed to honor the RC constraint:
// every object (every interval) must have the class's fixed replica count.
func (in *Instance) replicaTopUp(class *Class, store [][][]bool) float64 {
	if class == nil || class.Replica == NoConstraint {
		return 0
	}
	nN, nI, nK := in.Dims()
	origin := in.Topo.Origin
	repIK := make([][]int, nI)
	rmax := 0
	objMax := make([]int, nK)
	for i := 0; i < nI; i++ {
		repIK[i] = make([]int, nK)
		for k := 0; k < nK; k++ {
			c := 0
			for n := 0; n < nN; n++ {
				if n != origin && store[n][i][k] {
					c++
				}
			}
			repIK[i][k] = c
			if c > rmax {
				rmax = c
			}
			if c > objMax[k] {
				objMax[k] = c
			}
		}
	}
	cost := 0.0
	for k := 0; k < nK; k++ {
		target := rmax
		if class.Replica == PerEntity {
			target = objMax[k]
		}
		for i := 0; i < nI; i++ {
			cost += in.Cost.Alpha * float64(target-repIK[i][k])
		}
		if class.Replica == Uniform {
			cost += in.Cost.Beta * float64(rmax-objMax[k])
		}
	}
	return cost
}

func allocF3(n, i, k int) [][][]float64 {
	backing := make([]float64, n*i*k)
	out := make([][][]float64, n)
	for a := 0; a < n; a++ {
		out[a] = make([][]float64, i)
		for b := 0; b < i; b++ {
			out[a][b], backing = backing[:k:k], backing[k:]
		}
	}
	return out
}

func allocI3(n, i, k int) [][][]int16 {
	backing := make([]int16, n*i*k)
	out := make([][][]int16, n)
	for a := 0; a < n; a++ {
		out[a] = make([][]int16, i)
		for b := 0; b < i; b++ {
			out[a][b], backing = backing[:k:k], backing[k:]
		}
	}
	return out
}
