package server

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"wideplace/internal/lp"
)

func TestHistogramCumulativeBuckets(t *testing.T) {
	h := histogram{bounds: []float64{1, 5, 15}}
	for _, v := range []float64{0.2, 0.7, 3, 100} {
		h.observe(v)
	}
	bounds, cum, sum, count := h.snapshot()
	if len(bounds) != 3 {
		t.Fatalf("bounds = %v", bounds)
	}
	// Prometheus buckets are cumulative: le=1 holds 2, le=5 holds 3; the
	// 100 lands only in the implicit +Inf bucket (the total count).
	if cum[0] != 2 || cum[1] != 3 || cum[2] != 3 {
		t.Errorf("cumulative counts = %v, want [2 3 3]", cum)
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	if want := 0.2 + 0.7 + 3 + 100; sum != want {
		t.Errorf("sum = %g, want %g", sum, want)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := newMetrics()
	m.submitted.Add(3)
	m.cacheHits.Add(1)
	m.cacheMisses.Add(2)
	m.jobsDone.Add(2)
	m.duration.observe(0.3)
	m.duration.observe(12)
	g := gaugeSet{
		queueDepth:  1,
		jobsByState: map[JobState]int{StateRunning: 1, StateDone: 2},
		cacheSize:   2,
	}
	total := lp.Stats{Iterations: 1234, Wall: 1500 * time.Millisecond}

	var buf bytes.Buffer
	if err := m.write(&buf, g, 7, total); err != nil {
		t.Fatalf("write: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		"placementd_jobs_submitted_total 3",
		"placementd_cache_hits_total 1",
		"placementd_cache_misses_total 2",
		`placementd_jobs_finished_total{state="done"} 2`,
		`placementd_jobs_finished_total{state="failed"} 0`,
		"placementd_queue_depth 1",
		"placementd_cache_entries 2",
		`placementd_jobs{state="running"} 1`,
		`placementd_jobs{state="queued"} 0`,
		"placementd_lp_solves_total 7",
		"placementd_lp_iterations_total 1234",
		"placementd_lp_wall_seconds_total 1.5",
		`placementd_job_duration_seconds_bucket{le="0.5"} 1`,
		`placementd_job_duration_seconds_bucket{le="15"} 2`,
		`placementd_job_duration_seconds_bucket{le="+Inf"} 2`,
		"placementd_job_duration_seconds_count 2",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Every family needs HELP and TYPE lines to be scrapable.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line[:strings.IndexAny(line, "{ ")]
		base := strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum")
		base = strings.TrimSuffix(base, "_count")
		if !strings.Contains(text, "# TYPE "+base+" ") {
			t.Errorf("sample %q has no TYPE line for %q", line, base)
		}
	}
}
