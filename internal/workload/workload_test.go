package workload

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBucketBasics(t *testing.T) {
	tr := &Trace{
		Accesses: []Access{
			{At: 0, Node: 0, Object: 0},
			{At: 30 * time.Minute, Node: 0, Object: 1},
			{At: 90 * time.Minute, Node: 1, Object: 0},
			{At: 100 * time.Minute, Node: 1, Object: 0, Write: true},
		},
		NumNodes: 2, NumObjects: 2, Duration: 2 * time.Hour,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := tr.Bucket(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if c.Intervals != 2 {
		t.Fatalf("Intervals = %d, want 2", c.Intervals)
	}
	if c.Reads[0][0][0] != 1 || c.Reads[0][0][1] != 1 {
		t.Errorf("interval 0 reads wrong: %v", c.Reads[0][0])
	}
	if c.Reads[1][1][0] != 1 {
		t.Errorf("interval 1 node 1 reads wrong: %v", c.Reads[1][1])
	}
	if c.Writes[1][1][0] != 1 {
		t.Errorf("write not bucketed: %v", c.Writes[1][1])
	}
}

func TestBucketRemainderInterval(t *testing.T) {
	tr := &Trace{
		Accesses:   []Access{{At: 89 * time.Minute, Node: 0, Object: 0}},
		NumNodes:   1,
		NumObjects: 1,
		Duration:   90 * time.Minute,
	}
	c, err := tr.Bucket(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if c.Intervals != 2 {
		t.Fatalf("Intervals = %d, want 2 (60m + 30m remainder)", c.Intervals)
	}
	if c.Reads[0][1][0] != 1 {
		t.Error("access in the remainder interval lost")
	}
}

func TestBucketRejectsBadDelta(t *testing.T) {
	tr := &Trace{NumNodes: 1, NumObjects: 1, Duration: time.Hour}
	if _, err := tr.Bucket(0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestValidateRejects(t *testing.T) {
	base := Trace{NumNodes: 2, NumObjects: 2, Duration: time.Hour}

	tr := base
	tr.Accesses = []Access{{At: 10 * time.Minute}, {At: 5 * time.Minute}}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-order trace accepted")
	}
	tr = base
	tr.Accesses = []Access{{Node: 5}}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range node accepted")
	}
	tr = base
	tr.Accesses = []Access{{Object: 9}}
	if err := tr.Validate(); err == nil {
		t.Error("out-of-range object accepted")
	}
	tr = base
	tr.Accesses = []Access{{At: 2 * time.Hour}}
	if err := tr.Validate(); err == nil {
		t.Error("access beyond duration accepted")
	}
}

func TestGenerateWebShape(t *testing.T) {
	tr, err := GenerateWeb(WebOptions{Nodes: 10, Objects: 200, Requests: 50_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Accesses) != 50_000 {
		t.Fatalf("requests = %d, want 50000", len(tr.Accesses))
	}
	s := Describe(tr)
	// Zipf s=1: the hottest object should take roughly 1/H(200) ~ 17% of
	// requests; require a clearly heavy head and a cold tail.
	if s.HottestCount < len(tr.Accesses)/10 {
		t.Errorf("hottest object has %d accesses, want heavy head (>=10%% of %d)", s.HottestCount, len(tr.Accesses))
	}
	if s.ColdestCount > s.HottestCount/50 {
		t.Errorf("coldest %d vs hottest %d: tail not heavy", s.ColdestCount, s.HottestCount)
	}
}

func TestGenerateGroupShape(t *testing.T) {
	tr, err := GenerateGroup(GroupOptions{Nodes: 10, Objects: 100, Requests: 80_000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	s := Describe(tr)
	// GROUP is near-uniform: hottest/coldest ratio stays near the
	// configured 36/8.5 ~ 4.2, certainly below 8.
	if s.ColdestCount == 0 || s.HottestCount/s.ColdestCount > 8 {
		t.Errorf("popularity ratio %d/%d too skewed for GROUP", s.HottestCount, s.ColdestCount)
	}
	if s.ActiveNodes != 10 {
		t.Errorf("ActiveNodes = %d, want all 10 active", s.ActiveNodes)
	}
}

func TestGenerateDeterminism(t *testing.T) {
	a, err := GenerateWeb(WebOptions{Nodes: 5, Objects: 50, Requests: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWeb(WebOptions{Nodes: 5, Objects: 50, Requests: 1000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Accesses {
		if a.Accesses[i] != b.Accesses[i] {
			t.Fatalf("access %d differs between identical seeds", i)
		}
	}
	c, err := GenerateWeb(WebOptions{Nodes: 5, Objects: 50, Requests: 1000, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Accesses {
		if a.Accesses[i] != c.Accesses[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := GenerateWeb(WebOptions{Nodes: -1}); err == nil {
		t.Error("negative nodes accepted")
	}
	if _, err := GenerateGroup(GroupOptions{MinPop: 10, MaxPop: 5}); err == nil {
		t.Error("MaxPop < MinPop accepted")
	}
}

func TestBucketPreservesTotals(t *testing.T) {
	check := func(seed uint64) bool {
		tr, err := GenerateWeb(WebOptions{Nodes: 4, Objects: 30, Requests: 500, Seed: seed})
		if err != nil {
			return false
		}
		c, err := tr.Bucket(37 * time.Minute)
		if err != nil {
			return false
		}
		total := 0
		for _, v := range c.TotalReads() {
			total += v
		}
		objTotal := 0
		for _, v := range c.ObjectReads() {
			objTotal += v
		}
		return total == 500 && objTotal == 500
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBoundAppliesTo(t *testing.T) {
	d := time.Hour
	cases := []struct {
		prime time.Duration
		want  bool
	}{
		{time.Hour, true},
		{2 * time.Hour, true},
		{3 * time.Hour, true},
		{90 * time.Minute, false},
		{30 * time.Minute, false},
	}
	for _, c := range cases {
		if got := BoundAppliesTo(d, c.prime); got != c.want {
			t.Errorf("BoundAppliesTo(1h, %v) = %v, want %v", c.prime, got, c.want)
		}
	}
}

func TestPerAccessInterval(t *testing.T) {
	// Two nodes, fully interacting. Gaps: 10m (between 0m and 10m) and 25m.
	// m1 = 10m, m2 = 25m >= 2*m1, so delta = m1.
	tr := &Trace{
		Accesses: []Access{
			{At: 0, Node: 0},
			{At: 10 * time.Minute, Node: 1},
			{At: 35 * time.Minute, Node: 0},
		},
		NumNodes: 2, NumObjects: 1, Duration: time.Hour,
	}
	full := [][]bool{{true, true}, {true, true}}
	d, err := PerAccessInterval(tr, full)
	if err != nil {
		t.Fatal(err)
	}
	if d != 10*time.Minute {
		t.Errorf("delta = %v, want 10m (m2 >= 2*m1)", d)
	}

	// Add an access creating a 15m gap: m1 = 10m, m2 = 15m < 2*m1 -> m1/2.
	tr2 := &Trace{
		Accesses: []Access{
			{At: 0, Node: 0},
			{At: 10 * time.Minute, Node: 1},
			{At: 25 * time.Minute, Node: 0},
		},
		NumNodes: 2, NumObjects: 1, Duration: time.Hour,
	}
	d, err = PerAccessInterval(tr2, full)
	if err != nil {
		t.Fatal(err)
	}
	if d != 5*time.Minute {
		t.Errorf("delta = %v, want 5m (m2 < 2*m1)", d)
	}
}

func TestPerAccessIntervalRespectsSphere(t *testing.T) {
	// Nodes do not interact: each node sees only its own accesses, so the
	// 1-minute cross-node gap must be ignored.
	tr := &Trace{
		Accesses: []Access{
			{At: 0, Node: 0},
			{At: time.Minute, Node: 1},
			{At: 30 * time.Minute, Node: 0},
			{At: 61 * time.Minute, Node: 1},
		},
		NumNodes: 2, NumObjects: 1, Duration: 2 * time.Hour,
	}
	local := [][]bool{{true, false}, {false, true}}
	d, err := PerAccessInterval(tr, local)
	if err != nil {
		t.Fatal(err)
	}
	// m1 = 30m (node 0), m2 = 60m (node 1). Since m2 >= 2*m1, delta = m1.
	// The 1-minute cross-node gap must not shrink it.
	if d != 30*time.Minute {
		t.Errorf("delta = %v, want 30m (cross-node gap ignored)", d)
	}
}

func TestPerAccessIntervalErrors(t *testing.T) {
	tr := &Trace{Accesses: []Access{{At: 0}}, NumNodes: 1, NumObjects: 1, Duration: time.Hour}
	if _, err := PerAccessInterval(tr, [][]bool{{true}}); err == nil {
		t.Error("single access should yield no gap and an error")
	}
	if _, err := PerAccessInterval(tr, nil); err == nil {
		t.Error("matrix size mismatch accepted")
	}
}

func TestReassign(t *testing.T) {
	tr := &Trace{
		Accesses: []Access{
			{At: 0, Node: 0, Object: 0},
			{At: time.Minute, Node: 1, Object: 0},
			{At: 2 * time.Minute, Node: 2, Object: 0},
		},
		NumNodes: 3, NumObjects: 1, Duration: time.Hour,
	}
	// Sites 0 and 2 stay open; site 1's users go to site 0.
	out, err := tr.Reassign([]int{0, 0, 2}, []int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if out.NumNodes != 2 {
		t.Fatalf("NumNodes = %d, want 2", out.NumNodes)
	}
	wantNodes := []int{0, 0, 1}
	for i, a := range out.Accesses {
		if a.Node != wantNodes[i] {
			t.Errorf("access %d node = %d, want %d", i, a.Node, wantNodes[i])
		}
	}
	if _, err := tr.Reassign([]int{0, 0}, []int{0}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := tr.Reassign([]int{0, 1, 2}, []int{0, 2}); err == nil {
		t.Error("assignment to non-open site accepted")
	}
}

func TestAddWrites(t *testing.T) {
	tr, err := GenerateWeb(WebOptions{Nodes: 3, Objects: 10, Requests: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := AddWrites(tr, 0.25, 9)
	s := Describe(w)
	if s.Writes == 0 || s.Reads == 0 {
		t.Fatalf("writes = %d, reads = %d: expected a mix", s.Writes, s.Reads)
	}
	frac := float64(s.Writes) / float64(s.Requests)
	if frac < 0.15 || frac > 0.35 {
		t.Errorf("write fraction = %g, want ~0.25", frac)
	}
	// Original trace untouched.
	if Describe(tr).Writes != 0 {
		t.Error("AddWrites mutated its input")
	}
}
