package lp

import (
	"math"
	"testing"
)

// ladderModel is a small covering LP whose only moving part is the
// right-hand side scale — the shape every solve in a QoS sweep shares.
// min Σ c_j x_j  s.t.  per-demand cover rows scaled by rhs, shared
// capacity row, x in [0, 10].
func ladderModel(rhs float64) *Model {
	m := NewModel(Minimize)
	const n = 8
	vars := make([]int, n)
	for j := 0; j < n; j++ {
		cost := 1 + float64((j*7)%5)/3
		vars[j] = m.AddVar(0, 10, cost, "")
	}
	for r := 0; r < 4; r++ {
		coefs := make([]Coef, 0, n/2)
		for j := r; j < n; j += 2 {
			coefs = append(coefs, Coef{Var: vars[j], Value: 1 + float64((r+j)%3)/2})
		}
		m.AddGE(coefs, rhs*(2+float64(r)), "")
	}
	all := make([]Coef, n)
	for j := 0; j < n; j++ {
		all[j] = Coef{Var: vars[j], Value: 1}
	}
	m.AddLE(all, 60, "")
	return m
}

func solveLadder(t *testing.T, rhs float64, start *Basis) *Solution {
	t.Helper()
	sol, err := SolveModel(ladderModel(rhs), Options{Start: start})
	if err != nil {
		t.Fatalf("rhs=%g: %v", rhs, err)
	}
	return sol
}

// TestWarmStartSameProblem re-solves an identical problem from its own
// final basis: the warm solve must report warm stats, reach the same
// objective, and need no more iterations than the cold solve.
func TestWarmStartSameProblem(t *testing.T) {
	cold := solveLadder(t, 1, nil)
	if cold.Stats.ColdSolves != 1 || cold.Stats.WarmSolves != 0 {
		t.Fatalf("cold solve stats: %+v", cold.Stats)
	}
	if cold.Basis == nil {
		t.Fatal("cold solve returned no basis")
	}
	warm := solveLadder(t, 1, cold.Basis)
	if warm.Stats.WarmSolves != 1 || warm.Stats.ColdSolves != 0 {
		t.Fatalf("warm solve stats: %+v", warm.Stats)
	}
	if math.Abs(warm.Objective-cold.Objective) > 1e-9*math.Max(1, math.Abs(cold.Objective)) {
		t.Fatalf("warm objective %g != cold %g", warm.Objective, cold.Objective)
	}
	if warm.Iterations > cold.Iterations {
		t.Errorf("warm solve took %d iterations, cold took %d", warm.Iterations, cold.Iterations)
	}
	verifyOptimal(t, ladderModel(1), warm)
}

// TestWarmStartChain walks an ascending RHS ladder feeding each basis into
// the next solve — the sweep engine's usage pattern. Every point must
// match its cold solve to 1e-9 and pass the independent KKT check, and the
// chain must save simplex iterations overall.
func TestWarmStartChain(t *testing.T) {
	ladder := []float64{1, 1.5, 2, 2.5, 3}
	var start *Basis
	warmIters, coldIters := 0, 0
	for i, rhs := range ladder {
		warm := solveLadder(t, rhs, start)
		cold := solveLadder(t, rhs, nil)
		if i > 0 && warm.Stats.WarmSolves != 1 {
			t.Errorf("rhs=%g: chain solve not warm: %+v", rhs, warm.Stats)
		}
		if math.Abs(warm.Objective-cold.Objective) > 1e-9*math.Max(1, math.Abs(cold.Objective)) {
			t.Errorf("rhs=%g: warm objective %g != cold %g", rhs, warm.Objective, cold.Objective)
		}
		verifyOptimal(t, ladderModel(rhs), warm)
		warmIters += warm.Iterations
		coldIters += cold.Iterations
		start = warm.Basis
	}
	if warmIters > coldIters {
		t.Errorf("warm chain took %d iterations, cold solves %d", warmIters, coldIters)
	}
}

// TestWarmStartShapeMismatch seeds a solve with a basis from a different
// problem shape: the solver must fall back to a cold start and still
// solve correctly.
func TestWarmStartShapeMismatch(t *testing.T) {
	other := NewModel(Minimize)
	x := other.AddVar(0, 5, 1, "")
	other.AddGE([]Coef{{Var: x, Value: 1}}, 1, "")
	osol, err := SolveModel(other, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sol := solveLadder(t, 1, osol.Basis)
	if sol.Stats.ColdSolves != 1 || sol.Stats.WarmSolves != 0 {
		t.Fatalf("mismatched basis was not rejected: %+v", sol.Stats)
	}
	verifyOptimal(t, ladderModel(1), sol)
}

// TestWarmStartCorruptBasis seeds with internally inconsistent snapshots;
// all of them must be rejected in favor of the crash basis.
func TestWarmStartCorruptBasis(t *testing.T) {
	good := solveLadder(t, 1, nil).Basis
	corrupt := []*Basis{
		nil,
		{numRows: good.numRows, numCols: good.numCols}, // empty slices
		func() *Basis { // duplicate basic column
			b := &Basis{numRows: good.numRows, numCols: good.numCols,
				basic:  append([]int(nil), good.basic...),
				status: append([]colStatus(nil), good.status...)}
			if len(b.basic) > 1 {
				b.basic[1] = b.basic[0]
			}
			return b
		}(),
		func() *Basis { // basic column out of range
			b := &Basis{numRows: good.numRows, numCols: good.numCols,
				basic:  append([]int(nil), good.basic...),
				status: append([]colStatus(nil), good.status...)}
			b.basic[0] = b.numCols
			return b
		}(),
		func() *Basis { // status disagrees with the basic set
			b := &Basis{numRows: good.numRows, numCols: good.numCols,
				basic:  append([]int(nil), good.basic...),
				status: append([]colStatus(nil), good.status...)}
			b.status[b.basic[0]] = nonbasicLower
			return b
		}(),
	}
	for i, b := range corrupt {
		sol := solveLadder(t, 1, b)
		if sol.Stats.ColdSolves != 1 {
			t.Errorf("corrupt basis %d accepted: %+v", i, sol.Stats)
		}
		verifyOptimal(t, ladderModel(1), sol)
	}
}

// TestWarmStartBoundRepair takes a basis from a problem whose variables
// rest on finite bounds and installs it into a same-shaped problem where
// some of those bounds became infinite: the repaired statuses must yield a
// correct solve, not an infinite iterate.
func TestWarmStartBoundRepair(t *testing.T) {
	build := func(hi float64) *Model {
		m := NewModel(Minimize)
		x := m.AddVar(0, hi, -1, "") // minimize -x: pushes x to its cap
		y := m.AddVar(0, 10, 1, "")
		m.AddLE([]Coef{{Var: x, Value: 1}, {Var: y, Value: 1}}, 8, "")
		return m
	}
	capped, err := SolveModel(build(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	open := build(Inf)
	sol, err := SolveModel(open, Options{Start: capped.Basis})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-(-8)) > testTol {
		t.Fatalf("objective = %g, want -8", sol.Objective)
	}
	verifyOptimal(t, build(Inf), sol)
}

// TestBasisAccessors covers the exported shape accessors.
func TestBasisAccessors(t *testing.T) {
	sol := solveLadder(t, 1, nil)
	m := ladderModel(1)
	if got := sol.Basis.NumRows(); got != m.NumConstraints() {
		t.Errorf("NumRows = %d, want %d", got, m.NumConstraints())
	}
	if got := sol.Basis.NumCols(); got != m.NumVars()+m.NumConstraints() {
		t.Errorf("NumCols = %d, want %d", got, m.NumVars()+m.NumConstraints())
	}
}
