package controller

import (
	"math"
	"testing"
	"time"

	"wideplace/internal/core"
	"wideplace/internal/experiments"
	"wideplace/internal/heuristics"
	"wideplace/internal/lp"
	"wideplace/internal/scenario"
	"wideplace/internal/sim"
	"wideplace/internal/topology"
	"wideplace/internal/workload"
)

// diurnalSystem compiles the diurnal-shift builtin scenario — the drift
// workload the controller acceptance criteria are stated against.
func diurnalSystem(t *testing.T) *experiments.System {
	t.Helper()
	spec, err := scenario.Load("diurnal-shift")
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return res.System
}

// smallSystem builds a compact flash-crowd system for the cheaper tests.
func smallSystem(t *testing.T) (*topology.Topology, *workload.Trace, *workload.Counts) {
	t.Helper()
	topo, err := topology.Generate(topology.GenOptions{N: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateFlashCrowd(workload.FlashCrowdOptions{
		Nodes: 8, Objects: 8, Requests: 4000, Duration: 6 * time.Hour, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := tr.Bucket(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	return topo, tr, c
}

// The incremental warm chain must be an optimization, never an
// approximation: on every interval of the diurnal-shift scenario the
// warm re-solved bound has to equal the cold full-rebuild bound to LP
// tolerance, with the warm start actually engaged past the first step.
func TestReplayMatchesColdReplayOnDiurnalShift(t *testing.T) {
	sys := diurnalSystem(t)
	cfg := Config{Topo: sys.Topo, Cost: core.DefaultCost(), Goal: core.QoS(0.95, sys.Spec.Tlat)}
	warm, err := Replay(cfg, sys.Counts, true)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := ColdReplay(cfg, sys.Counts, true, warm)
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Steps) != sys.Counts.Intervals || len(cold.Steps) != len(warm.Steps) {
		t.Fatalf("step counts: warm %d, cold %d, want %d", len(warm.Steps), len(cold.Steps), sys.Counts.Intervals)
	}
	for i, ws := range warm.Steps {
		cs := cold.Steps[i]
		tol := 1e-9 * math.Max(1, math.Abs(cs.Bound))
		if diff := math.Abs(ws.Bound - cs.Bound); diff > tol {
			t.Errorf("interval %d: warm bound %.12f vs cold %.12f (diff %g)", i, ws.Bound, cs.Bound, diff)
		}
		if i > 0 && !ws.Warm {
			t.Errorf("interval %d: warm chain fell back to a cold start", i)
		}
		if cs.Warm {
			t.Errorf("interval %d: cold baseline reports a warm solve", i)
		}
	}
	if warm.TotalIterations >= cold.TotalIterations {
		t.Errorf("warm chain took %d iterations, cold baseline %d: no incremental win",
			warm.TotalIterations, cold.TotalIterations)
	}
}

// Applying every step's diffs in order must reconstruct every interval's
// placement exactly — the consumer-side contract of the diff stream.
func TestDiffStreamReconstructsPlacements(t *testing.T) {
	topo, _, counts := smallSystem(t)
	cfg := Config{Topo: topo, Cost: core.DefaultCost(), Goal: core.QoS(0.9, 80)}
	tr, err := Replay(cfg, counts, true)
	if err != nil {
		t.Fatal(err)
	}
	var place [][]bool
	for i, st := range tr.Steps {
		place = ApplyDiffs(place, st.Diffs, topo.N, counts.Objects)
		for n := range place {
			for k := range place[n] {
				if n == topo.Origin {
					continue
				}
				if place[n][k] != st.Placement[n][k] {
					t.Fatalf("interval %d: diff replay disagrees at node %d object %d", i, n, k)
				}
			}
		}
		if adds, drops := 0, 0; true {
			for _, d := range st.Diffs {
				adds += len(d.Adds)
				drops += len(d.Drops)
			}
			if adds != st.Adds || drops != st.Drops {
				t.Fatalf("interval %d: churn totals %d/%d do not match diffs %d/%d",
					i, st.Adds, st.Drops, adds, drops)
			}
		}
	}
}

// Reactive replay plans interval i from interval i-1's demand, so the
// recorded staleness is the realized planning error: total at the cold
// start (planned nothing, realized everything) and zero everywhere under
// the clairvoyant lookahead replay.
func TestReplayStalenessAccounting(t *testing.T) {
	topo, _, counts := smallSystem(t)
	cfg := Config{Topo: topo, Cost: core.DefaultCost(), Goal: core.QoS(0.9, 80)}
	reactive, err := Replay(cfg, counts, false)
	if err != nil {
		t.Fatal(err)
	}
	if s := reactive.Steps[0].Staleness; s != 1.0 {
		t.Errorf("cold-start staleness = %g, want 1.0 (planned from zero demand)", s)
	}
	moved := 0.0
	for _, st := range reactive.Steps[1:] {
		moved += st.Staleness
	}
	if moved == 0 {
		t.Error("drifting workload realized zero staleness across all reactive intervals")
	}
	lookahead, err := Replay(cfg, counts, true)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range lookahead.Steps {
		if st.Staleness != 0 {
			t.Errorf("interval %d: clairvoyant staleness = %g, want 0", i, st.Staleness)
		}
	}
}

// The trajectory evaluation harness: the controller's reactive plan is
// replayed through the simulator next to the paper's reactive heuristic
// class (LRU/LFU caching) on the same trace, yielding aligned
// per-interval QoS attainment and churn series.
func TestTrajectoryScoresAgainstReactiveHeuristics(t *testing.T) {
	topo, trace, counts := smallSystem(t)
	cfg := Config{Topo: topo, Cost: core.DefaultCost(), Goal: core.QoS(0.9, 80)}
	tr, err := Replay(cfg, counts, false)
	if err != nil {
		t.Fatal(err)
	}
	simCfg := sim.Config{
		Topo: topo, Trace: trace, Interval: counts.Delta,
		Tlat: 80, Alpha: 1, Beta: 1,
	}
	metrics, err := sim.RunAll(simCfg,
		heuristics.NewStatic(tr.Plan, counts.Delta),
		heuristics.NewLRU(4),
		heuristics.NewLFU(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(metrics) != 3 {
		t.Fatalf("RunAll returned %d metric sets, want 3", len(metrics))
	}
	for _, m := range metrics {
		if len(m.PerInterval) == 0 || len(m.PerInterval) > counts.Intervals {
			t.Fatalf("%s: %d per-interval rows for %d intervals", m.Heuristic, len(m.PerInterval), counts.Intervals)
		}
		served := 0
		for _, im := range m.PerInterval {
			if im.QoS < 0 || im.QoS > 1 {
				t.Fatalf("%s interval %d: QoS %g out of range", m.Heuristic, im.Interval, im.QoS)
			}
			served += im.Served
		}
		if served != m.Served {
			t.Fatalf("%s: per-interval served %d does not sum to total %d", m.Heuristic, served, m.Served)
		}
	}
	// The controller's plan is placed ahead of the demand it planned for;
	// its churn is bounded by the plan's own adds.
	planned := metrics[0]
	totalAdds := 0
	for _, st := range tr.Steps {
		totalAdds += st.Adds
	}
	if planned.Creations > totalAdds {
		t.Errorf("static replay created %d replicas, plan only adds %d", planned.Creations, totalAdds)
	}
}

// A Start basis in the config would fight the controller's own warm
// chain; New must reject it.
func TestNewRejectsCallerStartBasis(t *testing.T) {
	topo, _, counts := smallSystem(t)
	cfg := Config{Topo: topo, Objects: counts.Objects, Delta: counts.Delta,
		Cost: core.DefaultCost(), Goal: core.QoS(0.9, 80)}
	bad := cfg
	bad.LP.Start = new(lp.Basis)
	if _, err := New(bad); err == nil {
		t.Fatal("New accepted a caller-provided Start basis")
	}
	ctl, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	reads, err := counts.IntervalReads(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ctl.Step(reads); err != nil {
		t.Fatal(err)
	}
	if ctl.Interval() != 1 {
		t.Fatalf("Interval() = %d after one step", ctl.Interval())
	}
}
