package lp

import (
	"math"
	"testing"
)

func TestParsePricingRule(t *testing.T) {
	cases := []struct {
		in   string
		want PricingRule
		ok   bool
	}{
		{"", PricingAuto, true},
		{"auto", PricingAuto, true},
		{"devex", PricingDevex, true},
		{"dantzig", PricingDantzig, true},
		{"steepest", PricingAuto, false},
	}
	for _, c := range cases {
		got, ok := ParsePricingRule(c.in)
		if got != c.want || ok != c.ok {
			t.Errorf("ParsePricingRule(%q) = (%v, %v), want (%v, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

// TestPricingRulesAgree solves the same random instances under both
// pricing rules: the paths differ but the optimum must not.
func TestPricingRulesAgree(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		rng := newTestRand(seed + 100)
		m := randLP(rng, 5+rng.intn(25), 5+rng.intn(25))
		devex, derr := SolveModel(m, Options{Pricing: PricingDevex})
		dant, aerr := SolveModel(m, Options{Pricing: PricingDantzig})
		if (derr == nil) != (aerr == nil) {
			t.Fatalf("seed %d: classification mismatch: devex err=%v, dantzig err=%v", seed, derr, aerr)
		}
		if derr != nil {
			continue
		}
		scale := 1 + math.Abs(dant.Objective)
		if d := math.Abs(devex.Objective - dant.Objective); d > 1e-6*scale {
			t.Fatalf("seed %d: devex optimum %g != dantzig optimum %g", seed, devex.Objective, dant.Objective)
		}
		verifyOptimal(t, m, devex)
	}
}

// TestPricingRuleStamp checks that solves report the rule that actually
// ran, including the zero-value default resolving to devex.
func TestPricingRuleStamp(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar(0, 10, 1, "x")
	m.AddGE([]Coef{{x, 1}}, 2, "")
	def, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if def.Stats.PricingRule != "devex" {
		t.Errorf("default pricing rule = %q, want devex", def.Stats.PricingRule)
	}
	dant, err := SolveModel(m, Options{Pricing: PricingDantzig})
	if err != nil {
		t.Fatal(err)
	}
	if dant.Stats.PricingRule != "dantzig" {
		t.Errorf("pricing rule = %q, want dantzig", dant.Stats.PricingRule)
	}
}

// TestStatsPricingRuleMerge covers the aggregation semantics: agreeing
// solves keep the name, disagreeing ones degrade to "mixed".
func TestStatsPricingRuleMerge(t *testing.T) {
	var s Stats
	s.Add(Stats{PricingRule: "devex"})
	if s.PricingRule != "devex" {
		t.Errorf("after first add: %q", s.PricingRule)
	}
	s.Add(Stats{}) // empty contributions never change the name
	s.Add(Stats{PricingRule: "devex"})
	if s.PricingRule != "devex" {
		t.Errorf("after agreeing adds: %q", s.PricingRule)
	}
	s.Add(Stats{PricingRule: "dantzig"})
	if s.PricingRule != "mixed" {
		t.Errorf("after disagreeing add: %q", s.PricingRule)
	}
}
