// Package core implements the paper's contribution: the MC-PERF problem
// (minimal replication cost subject to a performance goal), heuristic
// classes expressed as extra constraints, LP-relaxation lower bounds, the
// domain-specific rounding algorithm that certifies bound tightness, and
// the two selection methodologies of Section 6.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"wideplace/internal/topology"
	"wideplace/internal/workload"
)

// Cost holds the unit costs of the MC-PERF cost function (paper Table 1).
// The paper's evaluation uses Alpha = Beta = 1 and everything else zero.
type Cost struct {
	Alpha float64 // storage cost per object per interval
	Beta  float64 // replica creation cost
	Gamma float64 // penalty per access served beyond the latency threshold
	Delta float64 // update propagation cost per write per replica
	Zeta  float64 // node enabling (opening) cost
}

// DefaultCost returns the constants used throughout the paper's evaluation.
func DefaultCost() Cost { return Cost{Alpha: 1, Beta: 1} }

// GoalKind distinguishes the two performance metrics of Section 3.1.
type GoalKind int

// Supported performance-goal metrics.
const (
	// QoSGoal requires a fraction Tqos of each user's reads to be served
	// within the latency threshold Tlat (constraint 2).
	QoSGoal GoalKind = iota + 1
	// AvgLatencyGoal requires each user's average read latency to be at
	// most Tavg (constraints 7-10).
	AvgLatencyGoal
)

// GoalScope selects whose accesses a QoS goal aggregates over.
type GoalScope int

// Supported goal scopes.
const (
	// PerUser states the goal for every node separately (the paper's
	// default in Section 6: "performance goals are specified on a per-user
	// basis over all objects").
	PerUser GoalScope = iota + 1
	// Overall states one aggregate goal over all nodes.
	Overall
)

// Goal is the performance goal of an instance.
type Goal struct {
	Kind  GoalKind
	Scope GoalScope
	// Tlat is the latency threshold in milliseconds (QoSGoal, and the
	// penalty term of the cost function).
	Tlat float64
	// Tqos is the required fraction of reads within Tlat (QoSGoal).
	Tqos float64
	// Tavg is the average latency target in milliseconds (AvgLatencyGoal).
	Tavg float64
}

// QoS returns the paper's standard goal: fraction tqos of each user's reads
// within tlat milliseconds.
func QoS(tqos, tlat float64) Goal {
	return Goal{Kind: QoSGoal, Scope: PerUser, Tqos: tqos, Tlat: tlat}
}

// AvgLatency returns an average-latency goal of tavg milliseconds per user.
// Tlat (used by the class reachability matrices) defaults to tavg.
func AvgLatency(tavg float64) Goal {
	return Goal{Kind: AvgLatencyGoal, Scope: PerUser, Tavg: tavg, Tlat: tavg}
}

// Instance is one MC-PERF problem: a system, a workload bucketed into
// evaluation intervals, unit costs and a performance goal.
//
// The origin (headquarters) node of the topology permanently stores every
// object at no cost and is not a placement candidate; replicas can be
// created on every other node.
type Instance struct {
	Topo   *topology.Topology
	Counts *workload.Counts
	Cost   Cost
	Goal   Goal
	// Initial optionally holds the placement in force before the first
	// interval: Initial[n][k] says node n already stores object k at the
	// start of the execution (paper constraint (4) "could be trivially
	// modified to account for any initial placement", and (21) makes
	// initial replicas part of the activity history, so reactive classes
	// may re-create initially-held objects in interval 0). Holding an
	// initial replica through interval 0 costs alpha as usual, but its
	// creation is sunk. Nil means the paper's default cold start.
	Initial [][]bool
}

// SetInitial installs an initial placement (dimensions: nodes x objects).
func (in *Instance) SetInitial(initial [][]bool) error {
	if initial == nil {
		in.Initial = nil
		return nil
	}
	if len(initial) != in.Counts.Nodes {
		return fmt.Errorf("core: initial placement covers %d nodes, instance has %d", len(initial), in.Counts.Nodes)
	}
	for n := range initial {
		if len(initial[n]) != in.Counts.Objects {
			return fmt.Errorf("core: initial placement row %d covers %d objects, instance has %d", n, len(initial[n]), in.Counts.Objects)
		}
	}
	in.Initial = initial
	return nil
}

// initiallyStored reports whether node n held object k before the trace
// started.
func (in *Instance) initiallyStored(n, k int) bool {
	return in.Initial != nil && in.Initial[n][k]
}

// WarmInitial returns an initial placement holding every object on every
// placement node — the "long-running system" assumption under which even
// single-interval-history reactive heuristics can serve interval 0.
func (in *Instance) WarmInitial() [][]bool {
	nN, _, nK := in.Dims()
	out := make([][]bool, nN)
	for n := range out {
		out[n] = make([]bool, nK)
		if n == in.Topo.Origin {
			continue
		}
		for k := range out[n] {
			out[n][k] = true
		}
	}
	return out
}

// NewInstance validates and assembles an instance.
func NewInstance(topo *topology.Topology, counts *workload.Counts, cost Cost, goal Goal) (*Instance, error) {
	if topo == nil || counts == nil {
		return nil, errors.New("core: instance needs a topology and counts")
	}
	if topo.N != counts.Nodes {
		return nil, fmt.Errorf("core: topology has %d nodes, counts has %d", topo.N, counts.Nodes)
	}
	switch goal.Kind {
	case QoSGoal:
		if goal.Tqos <= 0 || goal.Tqos > 1 {
			return nil, fmt.Errorf("core: Tqos = %g outside (0, 1]", goal.Tqos)
		}
		if goal.Tlat < 0 {
			return nil, errors.New("core: negative latency threshold")
		}
	case AvgLatencyGoal:
		if goal.Tavg <= 0 {
			return nil, errors.New("core: Tavg must be positive")
		}
	default:
		return nil, errors.New("core: goal kind not set")
	}
	if goal.Scope != PerUser && goal.Scope != Overall {
		return nil, errors.New("core: goal scope not set")
	}
	if cost.Alpha < 0 || cost.Beta < 0 || cost.Gamma < 0 || cost.Delta < 0 || cost.Zeta < 0 {
		return nil, errors.New("core: negative unit cost")
	}
	return &Instance{Topo: topo, Counts: counts, Cost: cost, Goal: goal}, nil
}

// Dims returns (nodes, intervals, objects).
func (in *Instance) Dims() (n, i, k int) {
	return in.Counts.Nodes, in.Counts.Intervals, in.Counts.Objects
}

// MaxQoS returns the largest achievable QoS fraction for node n under a
// class: the share of n's reads that can be served within Tlat even with
// replicas on every node reachable through the class's fetch matrix. A
// class whose MaxQoS is below Tqos for some node cannot meet the goal at
// any cost (this is how "local caching cannot even achieve a QoS goal above
// 99%" manifests for WEB in the paper).
func (in *Instance) MaxQoS(class *Class, n int) float64 {
	reach := in.Reach(class)
	total := 0
	for i := 0; i < in.Counts.Intervals; i++ {
		for k := 0; k < in.Counts.Objects; k++ {
			total += in.Counts.Reads[n][i][k]
		}
	}
	if total == 0 {
		return 1
	}
	if len(reach[n]) > 0 || in.originReachable(class, n) {
		return 1
	}
	return 0
}

// Reach returns, for each node n, the placement-candidate nodes m (origin
// excluded) whose replicas can serve n within the latency threshold under
// the class's routing knowledge: dist[n][m] AND fetch[n][m].
func (in *Instance) Reach(class *Class) [][]int {
	dist := in.Topo.Dist(in.Goal.Tlat)
	fetch := class.fetchMatrix(in.Topo)
	out := make([][]int, in.Topo.N)
	for n := 0; n < in.Topo.N; n++ {
		for m := 0; m < in.Topo.N; m++ {
			if m == in.Topo.Origin {
				continue
			}
			if dist[n][m] && fetch[n][m] {
				out[n] = append(out[n], m)
			}
		}
	}
	return out
}

// originReachable reports whether node n is served by the origin's
// permanent copy within the latency threshold under the class's routing.
func (in *Instance) originReachable(class *Class, n int) bool {
	fetch := class.fetchMatrix(in.Topo)
	o := in.Topo.Origin
	return fetch[n][o] && in.Topo.Latency[n][o] <= in.Goal.Tlat
}

// totalReadsF returns per-node read totals as floats.
func (in *Instance) totalReadsF() []float64 {
	tot := in.Counts.TotalReads()
	out := make([]float64, len(tot))
	for i, v := range tot {
		out[i] = float64(v)
	}
	return out
}

// almostEqual compares costs with a relative tolerance.
func almostEqual(a, b, rel float64) bool {
	return math.Abs(a-b) <= rel*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

// IntervalCount returns the number of intervals a horizon splits into at
// evaluation interval delta (the remainder forms a final short interval).
func IntervalCount(horizon, delta time.Duration) int {
	ni := int(horizon / delta)
	if time.Duration(ni)*delta < horizon {
		ni++
	}
	if ni == 0 {
		ni = 1
	}
	return ni
}
