package heuristics

import (
	"testing"
	"time"

	"wideplace/internal/sim"
	"wideplace/internal/topology"
	"wideplace/internal/workload"
)

// TestAllHeuristicsReplayCleanly replays generated traces against every
// heuristic at several capacities; sim.Run's internal invariants (never
// serve from a non-holder, valid sources) act as the oracle.
func TestAllHeuristicsReplayCleanly(t *testing.T) {
	for _, seed := range []uint64{1, 2} {
		tp, err := topology.Generate(topology.GenOptions{N: 7, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		tr, err := workload.GenerateWeb(workload.WebOptions{
			Nodes: 7, Objects: 25, Requests: 3000, Seed: seed, Duration: 6 * time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		counts, err := tr.Bucket(time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		cfg := sim.Config{Topo: tp, Trace: tr, Interval: time.Hour, Tlat: 150, Alpha: 1, Beta: 1}
		for _, cap := range []int{0, 1, 5, 25} {
			all := []sim.Heuristic{
				NewLRU(cap),
				NewLFU(cap),
				NewCoopLRU(cap),
				NewGreedyGlobal(cap, counts),
				NewGreedyGlobalPrefetch(cap, counts),
				NewQiuGreedy(min(cap, tp.N-1), counts),
				NewQiuGreedyPrefetch(min(cap, tp.N-1), counts),
			}
			for _, h := range all {
				m, err := sim.Run(cfg, h)
				if err != nil {
					t.Fatalf("seed %d cap %d %s: %v", seed, cap, h.Name(), err)
				}
				if m.Served != 3000 {
					t.Errorf("%s: served %d of 3000", h.Name(), m.Served)
				}
				if m.QoS < 0 || m.QoS > 1 || m.MinNodeQoS < 0 || m.MinNodeQoS > 1 {
					t.Errorf("%s: QoS out of range: %g/%g", h.Name(), m.QoS, m.MinNodeQoS)
				}
				if m.Cost < 0 {
					t.Errorf("%s: negative cost %g", h.Name(), m.Cost)
				}
				if cap == 0 && m.CreationCost != 0 {
					t.Errorf("%s: creations with zero capacity", h.Name())
				}
			}
		}
	}
}

// TestCoopDominatesPlainLRUOnQoS: with identical capacities, cooperative
// caching serves at least as many requests within the threshold as plain
// caching (it has strictly more serving options).
func TestCoopDominatesPlainLRUOnQoS(t *testing.T) {
	tp, err := topology.Generate(topology.GenOptions{N: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := workload.GenerateWeb(workload.WebOptions{
		Nodes: 8, Objects: 30, Requests: 5000, Seed: 3, Duration: 6 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.Config{Topo: tp, Trace: tr, Tlat: 150, Alpha: 1, Beta: 1}
	lru, err := sim.Run(cfg, NewLRU(5))
	if err != nil {
		t.Fatal(err)
	}
	coop, err := sim.Run(cfg, NewCoopLRU(5))
	if err != nil {
		t.Fatal(err)
	}
	// Not a strict theorem (eviction patterns differ), but with matched
	// traces a large regression would indicate a bug.
	if coop.QoS < lru.QoS-0.02 {
		t.Errorf("coop QoS %.4f well below plain LRU %.4f", coop.QoS, lru.QoS)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
