package main

// The bench-trace subcommand: end-to-end measurement of the streaming
// trace pipeline against the materialize-then-bucket baseline, appending
// one record per run to a JSON history file (BENCH_trace.json by
// convention, next to the solver's BENCH.json).

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"wideplace/internal/workload"
)

// phaseStats measures one aggregation strategy over the same workload.
type phaseStats struct {
	WallNs          int64   `json:"wallNs"`
	RequestsPerSec  float64 `json:"requestsPerSec"`
	PeakHeapBytes   uint64  `json:"peakHeapBytes"`
	TotalAllocBytes uint64  `json:"totalAllocBytes"`
}

// binRecord measures the binary trace round trip.
type binRecord struct {
	Bytes            int64   `json:"bytes"`
	BytesPerRequest  float64 `json:"bytesPerRequest"`
	Sections         int     `json:"sections"`
	WriteWallNs      int64   `json:"writeWallNs"`
	ReadBucketWallNs int64   `json:"readBucketWallNs"`
	Workers          int     `json:"workers"`
}

// traceRecord is one bench-trace run.
type traceRecord struct {
	GoVersion      string      `json:"goVersion"`
	GOMAXPROCS     int         `json:"gomaxprocs"`
	Scenario       string      `json:"scenario"`
	Nodes          int         `json:"nodes"`
	Objects        int         `json:"objects"`
	Requests       int         `json:"requests"`
	Intervals      int         `json:"intervals"`
	Streaming      phaseStats  `json:"streaming"`
	Materialized   *phaseStats `json:"materialized,omitempty"`
	Binary         binRecord   `json:"binary"`
	PeakReductionX float64     `json:"peakReductionX,omitempty"`
}

// measure runs f with a heap-peak sampler alongside. The runtime is GCed
// to a quiet baseline first, so PeakHeapBytes approximates the live-heap
// high-water mark of f alone and TotalAllocBytes its allocation volume.
func measure(f func() error) (phaseStats, error) {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	baseAlloc := ms.TotalAlloc
	peak := ms.HeapAlloc
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(2 * time.Millisecond)
		defer t.Stop()
		var s runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				runtime.ReadMemStats(&s)
				if s.HeapAlloc > peak {
					peak = s.HeapAlloc
				}
			}
		}
	}()
	start := time.Now()
	err := f()
	wall := time.Since(start)
	close(stop)
	<-done
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > peak {
		peak = ms.HeapAlloc
	}
	return phaseStats{
		WallNs:          wall.Nanoseconds(),
		PeakHeapBytes:   peak,
		TotalAllocBytes: ms.TotalAlloc - baseAlloc,
	}, err
}

func benchTrace(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench-trace", flag.ContinueOnError)
	ref := fs.String("scenario", "paper20-group-full", "registered scenario name or spec file")
	requests := fs.Int("requests", 0, "override the scenario's request volume")
	workers := fs.Int("workers", 0, "decode goroutines for the parallel bucket phase (0 = GOMAXPROCS)")
	sections := fs.Int("sections", 0, "binary trace sections (0 = derive from volume)")
	binPath := fs.String("bin", "", "keep the binary trace at this path (default: temp file, removed)")
	record := fs.String("record", "", "append the run to this JSON history file")
	gate := fs.Float64("gate", 0, "refuse to record unless peak-alloc reduction reaches this factor")
	skipMat := fs.Bool("skip-materialized", false, "skip the materialize-then-bucket baseline (no peak comparison)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *gate > 0 && *skipMat {
		return fmt.Errorf("bench-trace: -gate needs the materialized baseline (drop -skip-materialized)")
	}
	spec, err := loadSpecWithRequests(*ref, *requests)
	if err != nil {
		return err
	}
	delta := spec.Delta()

	rec := traceRecord{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scenario:   spec.Name,
	}

	// Phase 1: one-pass streaming aggregation, generator -> Counts.
	var streamCounts *workload.Counts
	st, err := spec.WorkloadStream()
	if err != nil {
		return err
	}
	rec.Nodes, rec.Objects, rec.Requests = st.Nodes(), st.Objects(), st.Requests()
	rec.Streaming, err = measure(func() error {
		var err error
		streamCounts, err = st.Counts(delta)
		return err
	})
	if err != nil {
		return err
	}
	rec.Intervals = streamCounts.Intervals
	rec.Streaming.RequestsPerSec = float64(rec.Requests) / (float64(rec.Streaming.WallNs) / 1e9)
	fmt.Fprintf(stdout, "streaming:    %d requests -> counts in %v (%.0f requests/s, peak heap %s)\n",
		rec.Requests, time.Duration(rec.Streaming.WallNs).Round(time.Millisecond),
		rec.Streaming.RequestsPerSec, fmtBytes(rec.Streaming.PeakHeapBytes))

	// Phase 2: persist the stream in the binary trace format.
	path := *binPath
	if path == "" {
		dir, err := os.MkdirTemp("", "bench-trace-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "trace.bin")
	}
	st2, err := spec.WorkloadStream()
	if err != nil {
		return err
	}
	wstart := time.Now()
	stats, err := workload.WriteStreamBin(path, st2, *sections)
	if err != nil {
		return err
	}
	rec.Binary = binRecord{
		Bytes:           stats.Bytes,
		BytesPerRequest: stats.BytesPerRequest(),
		Sections:        stats.Sections,
		WriteWallNs:     time.Since(wstart).Nanoseconds(),
	}
	fmt.Fprintf(stdout, "binary write: %d bytes (%.2f bytes/request, %d sections) in %v\n",
		stats.Bytes, stats.BytesPerRequest(), stats.Sections,
		time.Duration(rec.Binary.WriteWallNs).Round(time.Millisecond))

	// Phase 3: mmap the file back and aggregate sections in parallel.
	r, err := workload.OpenBin(path)
	if err != nil {
		return err
	}
	defer r.Close()
	rstart := time.Now()
	binCounts, err := r.Counts(delta, *workers)
	if err != nil {
		return err
	}
	rec.Binary.ReadBucketWallNs = time.Since(rstart).Nanoseconds()
	w := *workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > stats.Sections {
		w = stats.Sections
	}
	rec.Binary.Workers = w
	if !binCounts.Equal(streamCounts) {
		return fmt.Errorf("bench-trace: binary-read counts differ from streaming counts")
	}
	fmt.Fprintf(stdout, "binary read:  counts in %v with %d workers (%.0f requests/s), identical to streaming\n",
		time.Duration(rec.Binary.ReadBucketWallNs).Round(time.Millisecond), w,
		float64(rec.Requests)/(float64(rec.Binary.ReadBucketWallNs)/1e9))

	// Phase 4: the baseline this pipeline replaces — materialize the full
	// access slice, sort it, bucket it.
	if !*skipMat {
		var matCounts *workload.Counts
		st3, err := spec.WorkloadStream()
		if err != nil {
			return err
		}
		mat, err := measure(func() error {
			tr, err := st3.Materialize()
			if err != nil {
				return err
			}
			matCounts, err = tr.Bucket(delta)
			return err
		})
		if err != nil {
			return err
		}
		mat.RequestsPerSec = float64(rec.Requests) / (float64(mat.WallNs) / 1e9)
		rec.Materialized = &mat
		if !matCounts.Equal(streamCounts) {
			return fmt.Errorf("bench-trace: materialized counts differ from streaming counts")
		}
		if rec.Streaming.PeakHeapBytes > 0 {
			rec.PeakReductionX = float64(mat.PeakHeapBytes) / float64(rec.Streaming.PeakHeapBytes)
		}
		fmt.Fprintf(stdout, "materialized: counts in %v (%.0f requests/s, peak heap %s), identical to streaming\n",
			time.Duration(mat.WallNs).Round(time.Millisecond), mat.RequestsPerSec, fmtBytes(mat.PeakHeapBytes))
		fmt.Fprintf(stdout, "peak-alloc reduction: %.1fx\n", rec.PeakReductionX)
		if *gate > 0 && rec.PeakReductionX < *gate {
			return fmt.Errorf("bench-trace: peak-alloc reduction %.2fx below the %.2fx gate; not recording", rec.PeakReductionX, *gate)
		}
	}

	if *record != "" {
		if err := appendTraceRecord(*record, rec); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded -> %s\n", *record)
	}
	return nil
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%d B", b)
	}
}

// appendTraceRecord extends the JSON-array history file with one record,
// tolerating a missing or empty file.
func appendTraceRecord(path string, rec traceRecord) error {
	var history []json.RawMessage
	if data, err := os.ReadFile(path); err == nil {
		trimmed := strings.TrimSpace(string(data))
		if trimmed != "" {
			if err := json.Unmarshal([]byte(trimmed), &history); err != nil {
				return fmt.Errorf("existing %s: %w", path, err)
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	raw, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	history = append(history, raw)
	out, err := json.MarshalIndent(history, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
