package lp

import (
	"errors"
	"math"
	"testing"
)

const testTol = 1e-6

// verifyOptimal independently certifies that sol is optimal for p by
// checking primal feasibility and the Karush-Kuhn-Tucker sign conditions
// using the returned duals. This does not reuse the simplex machinery.
func verifyOptimal(t *testing.T, m *Model, sol *Solution) {
	t.Helper()
	p, err := m.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	n := p.numStruct
	// Sense sign: p.obj is already negated for Maximize; duals were flipped
	// back, so flip them again to work in the internal minimize form.
	y := make([]float64, p.numRows)
	for i, d := range sol.Duals {
		if p.sense == Maximize {
			d = -d
		}
		y[i] = d
	}
	// Primal feasibility + row activities.
	act := make([]float64, p.numRows)
	for j := 0; j < n; j++ {
		xj := sol.X[j]
		if xj < p.lo[j]-testTol || xj > p.hi[j]+testTol {
			t.Fatalf("variable %d = %g outside [%g, %g]", j, xj, p.lo[j], p.hi[j])
		}
		ri, rv := p.cols.Col(j)
		for k, r := range ri {
			act[r] += rv[k] * xj
		}
	}
	for i := 0; i < p.numRows; i++ {
		lo, hi := p.lo[n+i], p.hi[n+i]
		scale := math.Max(1, math.Abs(act[i]))
		if act[i] < lo-testTol*scale || act[i] > hi+testTol*scale {
			t.Fatalf("row %d activity %g outside [%g, %g]", i, act[i], lo, hi)
		}
		// Dual sign vs row activity (complementary slackness).
		if y[i] > testTol && act[i] > lo+testTol*scale {
			t.Errorf("row %d: positive dual %g but activity %g not at lower bound %g", i, y[i], act[i], lo)
		}
		if y[i] < -testTol && act[i] < hi-testTol*scale {
			t.Errorf("row %d: negative dual %g but activity %g not at upper bound %g", i, y[i], act[i], hi)
		}
	}
	// Reduced-cost sign conditions for structural columns.
	for j := 0; j < n; j++ {
		d := p.obj[j]
		ri, rv := p.cols.Col(j)
		for k, r := range ri {
			d -= y[r] * rv[k]
		}
		if d > testTol && sol.X[j] > p.lo[j]+testTol {
			t.Errorf("var %d: reduced cost %g > 0 but x=%g not at lower bound %g", j, d, sol.X[j], p.lo[j])
		}
		if d < -testTol && sol.X[j] < p.hi[j]-testTol {
			t.Errorf("var %d: reduced cost %g < 0 but x=%g not at upper bound %g", j, d, sol.X[j], p.hi[j])
		}
	}
	// Objective consistency.
	obj := 0.0
	for j := 0; j < n; j++ {
		c := p.obj[j]
		if p.sense == Maximize {
			c = -c
		}
		obj += c * sol.X[j]
	}
	if math.Abs(obj-sol.Objective) > testTol*math.Max(1, math.Abs(obj)) {
		t.Errorf("objective mismatch: reported %g, recomputed %g", sol.Objective, obj)
	}
}

func TestSimpleMaximize(t *testing.T) {
	// max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18, x,y >= 0.
	// Classic: optimum 36 at (2, 6).
	m := NewModel(Maximize)
	x := m.AddVar(0, Inf, 3, "x")
	y := m.AddVar(0, Inf, 5, "y")
	m.AddLE([]Coef{{x, 1}}, 4, "c1")
	m.AddLE([]Coef{{y, 2}}, 12, "c2")
	m.AddLE([]Coef{{x, 3}, {y, 2}}, 18, "c3")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-36) > testTol {
		t.Fatalf("objective = %g, want 36", sol.Objective)
	}
	if math.Abs(sol.X[x]-2) > testTol || math.Abs(sol.X[y]-6) > testTol {
		t.Fatalf("solution = (%g, %g), want (2, 6)", sol.X[x], sol.X[y])
	}
	verifyOptimal(t, m, sol)
}

func TestSimpleMinimize(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 10, x >= 2, y >= 0. Optimum 22 at (8, 2)?
	// 2x+3y with x+y>=10: put everything in x: x=10,y=0 -> 20.
	m := NewModel(Minimize)
	x := m.AddVar(2, Inf, 2, "x")
	y := m.AddVar(0, Inf, 3, "y")
	m.AddGE([]Coef{{x, 1}, {y, 1}}, 10, "cover")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-20) > testTol {
		t.Fatalf("objective = %g, want 20", sol.Objective)
	}
	verifyOptimal(t, m, sol)
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 5, 0 <= x <= 3, 0 <= y <= 4. Optimum x=3,y=2 -> 7.
	m := NewModel(Minimize)
	x := m.AddVar(0, 3, 1, "x")
	y := m.AddVar(0, 4, 2, "y")
	m.AddEQ([]Coef{{x, 1}, {y, 1}}, 5, "sum")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-7) > testTol {
		t.Fatalf("objective = %g, want 7", sol.Objective)
	}
	verifyOptimal(t, m, sol)
}

func TestRangeConstraint(t *testing.T) {
	// min x s.t. 3 <= x + y <= 8, y <= 2, x,y in [0,10]. Optimum x=1 (y=2).
	m := NewModel(Minimize)
	x := m.AddVar(0, 10, 1, "x")
	y := m.AddVar(0, 10, 0, "y")
	m.AddRange([]Coef{{x, 1}, {y, 1}}, 3, 8, "rng")
	m.AddLE([]Coef{{y, 1}}, 2, "ycap")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-1) > testTol {
		t.Fatalf("objective = %g, want 1", sol.Objective)
	}
	verifyOptimal(t, m, sol)
}

func TestInfeasible(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar(0, 1, 1, "x")
	m.AddGE([]Coef{{x, 1}}, 2, "impossible")
	_, err := SolveModel(m, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestInfeasibleSystem(t *testing.T) {
	// x + y >= 5 and x + y <= 3.
	m := NewModel(Minimize)
	x := m.AddVar(0, Inf, 1, "x")
	y := m.AddVar(0, Inf, 1, "y")
	m.AddGE([]Coef{{x, 1}, {y, 1}}, 5, "ge")
	m.AddLE([]Coef{{x, 1}, {y, 1}}, 3, "le")
	_, err := SolveModel(m, Options{})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestUnbounded(t *testing.T) {
	m := NewModel(Maximize)
	x := m.AddVar(0, Inf, 1, "x")
	y := m.AddVar(0, Inf, 0, "y")
	m.AddGE([]Coef{{x, 1}, {y, -1}}, 0, "slope")
	_, err := SolveModel(m, Options{})
	if !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestFreeVariable(t *testing.T) {
	// min |style| problem: min x s.t. x >= y - 3, x >= -y + 1, y free.
	// At y = 2: x = -1 possible? x >= y-3 = -1, x >= -y+1 = -1 -> x = -1.
	m := NewModel(Minimize)
	x := m.AddVar(math.Inf(-1), Inf, 1, "x")
	y := m.AddVar(math.Inf(-1), Inf, 0, "y")
	m.AddGE([]Coef{{x, 1}, {y, -1}}, -3, "a")
	m.AddGE([]Coef{{x, 1}, {y, 1}}, 1, "b")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-(-1)) > testTol {
		t.Fatalf("objective = %g, want -1", sol.Objective)
	}
	verifyOptimal(t, m, sol)
}

func TestNegativeBounds(t *testing.T) {
	// max x + y with x in [-5, -1], y in [-2, 3], x + y >= -4.
	// Optimum x=-1, y=3 -> 2.
	m := NewModel(Maximize)
	x := m.AddVar(-5, -1, 1, "x")
	y := m.AddVar(-2, 3, 1, "y")
	m.AddGE([]Coef{{x, 1}, {y, 1}}, -4, "c")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-2) > testTol {
		t.Fatalf("objective = %g, want 2", sol.Objective)
	}
	verifyOptimal(t, m, sol)
}

func TestDegenerateLP(t *testing.T) {
	// A classic cycling-prone instance (Beale). With anti-cycling this must
	// terminate at the optimum -0.05.
	m := NewModel(Minimize)
	x1 := m.AddVar(0, Inf, -0.75, "x1")
	x2 := m.AddVar(0, Inf, 150, "x2")
	x3 := m.AddVar(0, Inf, -0.02, "x3")
	x4 := m.AddVar(0, Inf, 6, "x4")
	m.AddLE([]Coef{{x1, 0.25}, {x2, -60}, {x3, -0.04}, {x4, 9}}, 0, "r1")
	m.AddLE([]Coef{{x1, 0.5}, {x2, -90}, {x3, -0.02}, {x4, 3}}, 0, "r2")
	m.AddLE([]Coef{{x3, 1}}, 1, "r3")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-(-0.05)) > testTol {
		t.Fatalf("objective = %g, want -0.05", sol.Objective)
	}
	verifyOptimal(t, m, sol)
}

func TestNoConstraints(t *testing.T) {
	m := NewModel(Minimize)
	m.AddVar(-2, 7, 3, "x")
	m.AddVar(-4, 5, -2, "y")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := 3.0*(-2) + (-2.0)*5
	if math.Abs(sol.Objective-want) > testTol {
		t.Fatalf("objective = %g, want %g", sol.Objective, want)
	}
}

func TestFixedVariable(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar(4, 4, 1, "x")
	y := m.AddVar(0, 10, 1, "y")
	m.AddGE([]Coef{{x, 1}, {y, 1}}, 7, "c")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-7) > testTol || math.Abs(sol.X[x]-4) > testTol {
		t.Fatalf("objective = %g (x=%g), want 7 (x=4)", sol.Objective, sol.X[x])
	}
	verifyOptimal(t, m, sol)
}

func TestCompileErrors(t *testing.T) {
	m := NewModel(Minimize)
	x := m.AddVar(1, 0, 1, "bad")
	if _, err := m.Compile(); err == nil {
		t.Error("crossed variable bounds not rejected")
	}

	m2 := NewModel(Minimize)
	x = m2.AddVar(0, 1, 1, "x")
	m2.AddRange([]Coef{{x, 1}}, 2, 1, "bad")
	if _, err := m2.Compile(); err == nil {
		t.Error("crossed constraint bounds not rejected")
	}

	m3 := NewModel(Minimize)
	x = m3.AddVar(0, 1, 1, "x")
	m3.AddLE([]Coef{{x, 1}, {x, 1}}, 1, "dup")
	if _, err := m3.Compile(); err == nil {
		t.Error("duplicate coefficient not rejected")
	}

	m4 := NewModel(Minimize)
	m4.AddLE([]Coef{{5, 1}}, 1, "oob")
	if _, err := m4.Compile(); err == nil {
		t.Error("out-of-range variable index not rejected")
	}
}

// randLP builds a random feasible bounded LP with a known feasible point.
func randLP(rng *testRand, nVars, nCons int) *Model {
	m := NewModel(Minimize)
	x0 := make([]float64, nVars)
	for j := 0; j < nVars; j++ {
		lo := rng.float()*4 - 2
		hi := lo + rng.float()*5
		obj := rng.float()*6 - 3
		m.AddVar(lo, hi, obj, "")
		x0[j] = lo + rng.float()*(hi-lo)
	}
	for i := 0; i < nCons; i++ {
		nz := 1 + rng.intn(4)
		var coefs []Coef
		act := 0.0
		seen := map[int]bool{}
		for k := 0; k < nz; k++ {
			j := rng.intn(nVars)
			if seen[j] {
				continue
			}
			seen[j] = true
			v := rng.float()*4 - 2
			coefs = append(coefs, Coef{j, v})
			act += v * x0[j]
		}
		switch rng.intn(3) {
		case 0:
			m.AddLE(coefs, act+rng.float(), "")
		case 1:
			m.AddGE(coefs, act-rng.float(), "")
		default:
			m.AddRange(coefs, act-rng.float(), act+rng.float(), "")
		}
	}
	return m
}

// testRand is a tiny deterministic xorshift RNG for tests.
type testRand struct{ s uint64 }

func newTestRand(seed uint64) *testRand { return &testRand{s: seed*2685821657736338717 + 1} }

func (r *testRand) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *testRand) float() float64 { return float64(r.next()>>11) / (1 << 53) }

func (r *testRand) intn(n int) int { return int(r.next() % uint64(n)) }

func TestRandomLPsCertified(t *testing.T) {
	for seed := uint64(1); seed <= 60; seed++ {
		rng := newTestRand(seed)
		m := randLP(rng, 5+rng.intn(25), 3+rng.intn(30))
		sol, err := SolveModel(m, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		verifyOptimal(t, m, sol)
	}
}

func TestDenseVsSparseBackends(t *testing.T) {
	for seed := uint64(100); seed < 130; seed++ {
		rng := newTestRand(seed)
		m := randLP(rng, 10+rng.intn(30), 10+rng.intn(40))
		solD, err := SolveModel(m, Options{Factorizer: NewDenseFactor(0)})
		if err != nil {
			t.Fatalf("seed %d dense: %v", seed, err)
		}
		solS, err := SolveModel(m, Options{Factorizer: NewSparseFactor(0)})
		if err != nil {
			t.Fatalf("seed %d sparse: %v", seed, err)
		}
		diff := math.Abs(solD.Objective - solS.Objective)
		if diff > 1e-5*math.Max(1, math.Abs(solD.Objective)) {
			t.Errorf("seed %d: dense objective %g != sparse objective %g", seed, solD.Objective, solS.Objective)
		}
		verifyOptimal(t, m, solS)
	}
}

func TestFrequentRefactorization(t *testing.T) {
	// Force an eta-file limit of 1 so every pivot refactorizes; the result
	// must be identical to the default configuration.
	rng := newTestRand(7)
	m := randLP(rng, 20, 25)
	solA, err := SolveModel(m, Options{Factorizer: NewDenseFactor(1)})
	if err != nil {
		t.Fatal(err)
	}
	solB, err := SolveModel(m, Options{Factorizer: NewDenseFactor(500)})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(solA.Objective-solB.Objective) > 1e-6 {
		t.Errorf("objectives differ with refactorization frequency: %g vs %g", solA.Objective, solB.Objective)
	}
}

func TestLargeSparseSetCoverLike(t *testing.T) {
	// A set-cover LP shaped like MC-PERF coverage rows: minimize sum x_j
	// subject to sum over a few x_j >= 1. The LP optimum is known to equal
	// the max-matching style bound; here we only certify optimality.
	rng := newTestRand(42)
	const n, rows = 400, 300
	m := NewModel(Minimize)
	for j := 0; j < n; j++ {
		m.AddVar(0, 1, 1, "")
	}
	for i := 0; i < rows; i++ {
		nz := 2 + rng.intn(5)
		seen := map[int]bool{}
		var coefs []Coef
		for k := 0; k < nz; k++ {
			j := rng.intn(n)
			if !seen[j] {
				seen[j] = true
				coefs = append(coefs, Coef{j, 1})
			}
		}
		m.AddGE(coefs, 1, "")
	}
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	verifyOptimal(t, m, sol)
	if sol.Objective <= 0 {
		t.Errorf("cover LP objective = %g, want > 0", sol.Objective)
	}
}

func TestMaximizeDualsSign(t *testing.T) {
	// For max c.x with a binding <= row, the dual must be >= 0 in the
	// Maximize convention (increasing the rhs increases the optimum).
	m := NewModel(Maximize)
	x := m.AddVar(0, Inf, 2, "x")
	row := m.AddLE([]Coef{{x, 1}}, 5, "cap")
	sol, err := SolveModel(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Objective != 10 {
		t.Fatalf("objective = %g, want 10", sol.Objective)
	}
	if sol.Duals[row] < -testTol {
		t.Errorf("dual = %g, want >= 0 for binding <= row under Maximize", sol.Duals[row])
	}
}
