// Command simulate tunes and replays deployed heuristics against their
// class lower bounds, regenerating the paper's Figure 2: the heuristic the
// methodology selects (greedy-global for WEB, Qiu-style greedy for GROUP)
// versus plain LRU caching.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"wideplace/internal/cli"
	"wideplace/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	var (
		workloadFlag = fs.String("workload", "web", "workload: web or group")
		scaleFlag    = fs.String("scale", "small", "experiment scale: small, medium or large")
		scenarioFlag = fs.String("scenario", "", "registered scenario name or spec file (overrides -workload/-scale)")
		parallel     = fs.Int("parallel", 0, "concurrent cells (0 = GOMAXPROCS, 1 = serial)")
		solveTimeout = fs.Duration("solve-timeout", 0, "wall-clock cap per LP solve (0 = unlimited)")
		warmStart    = fs.Bool("warm-start", true, "reuse each solution's basis to seed the next QoS point of the bound column (false = every cell solves cold)")
		verbose      = fs.Bool("v", false, "print per-point progress to stderr")
	)
	lpFlags := cli.RegisterLPFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var sys *experiments.System
	if *scenarioFlag != "" {
		res, err := cli.ResolveScenario(*scenarioFlag, "simulate", cli.ScenarioOptions{}, os.Stderr)
		if err != nil {
			return err
		}
		sys = res.System
	} else {
		spec, err := experiments.NewSpec(experiments.WorkloadKind(*workloadFlag), experiments.Scale(*scaleFlag))
		if err != nil {
			return err
		}
		if sys, err = experiments.Build(spec); err != nil {
			return err
		}
	}
	ctx, stop := cli.SignalContext(context.Background())
	defer stop()
	opts := experiments.Options{
		Parallel:     *parallel,
		SolveTimeout: *solveTimeout,
		Ctx:          ctx,
		ColdStart:    !*warmStart,
	}
	if err := lpFlags.Apply(&opts.Bound.LP); err != nil {
		return err
	}
	res, err := experiments.Figure2(sys, opts, cli.Progress(*verbose, os.Stderr))
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "# Figure 2 (%s): deployed heuristic cost vs class bound (nodes=%d objects=%d requests=%d)\n",
		sys.Spec.Workload, sys.Spec.Nodes, sys.Spec.Objects, sys.Spec.Requests)
	fmt.Fprintln(stdout, "qos\tclass_bound\tchosen_heuristic\tchosen_param\tlru_caching\tlru_param")
	for i := range res.Bound {
		fmt.Fprintf(stdout, "%g", res.Bound[i].QoS*100)
		cell := func(infeasible bool, v float64) string {
			if infeasible {
				return "-"
			}
			return fmt.Sprintf("%.0f", v)
		}
		fmt.Fprintf(stdout, "\t%s", cell(res.Bound[i].Infeasible, res.Bound[i].Bound))
		fmt.Fprintf(stdout, "\t%s\t%d", cell(res.Chosen[i].Infeasible, res.Chosen[i].Cost), res.Chosen[i].Param)
		fmt.Fprintf(stdout, "\t%s\t%d\n", cell(res.LRU[i].Infeasible, res.LRU[i].Cost), res.LRU[i].Param)
	}
	return nil
}
