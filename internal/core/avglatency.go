package core

import (
	"errors"
	"fmt"

	"wideplace/internal/lp"
)

// This file implements the paper's second performance metric (Sec. 3.1,
// constraints 7-10): the average read latency perceived by each user must
// not exceed Tavg. Requests are routed to exactly one replica (or the
// origin), so the model introduces route variables for every read-positive
// (node, interval, object) triple and every fetchable serving node.

// buildAvgLP assembles the MC-PERF linear relaxation for the
// average-latency goal.
func (in *Instance) buildAvgLP(class *Class) (*buildResult, error) {
	if in.Goal.Kind != AvgLatencyGoal {
		return nil, fmt.Errorf("core: buildAvgLP called with goal kind %d", in.Goal.Kind)
	}
	nN, nI, nK := in.Dims()
	origin := in.Topo.Origin
	m := lp.NewModel(lp.Minimize)
	b := &buildResult{
		model:         m,
		storeIdx:      allocIdx(nN, nI, nK),
		createIdx:     allocIdx(nN, nI, nK),
		coveredIdx:    allocIdx(nN, nI, nK),
		openIdx:       make([]int, nN),
		originCovered: make([]bool, nN),
		createOK:      in.createAllowed(class),
		qosRow:        make([]int, nN),
	}
	for n := range b.openIdx {
		b.openIdx[n] = -1
		b.qosRow[n] = -1
	}
	if err := in.addPlacementCore(b, class); err != nil {
		return nil, err
	}

	fetch := class.fetchMatrix(in.Topo)

	// Route variables and constraints (8)-(10) per read-positive triple;
	// the per-user average-latency rows (7) accumulate coefficients.
	type avgRow struct {
		coefs []lp.Coef
		bound float64 // Tavg * R_n minus constant route contributions
	}
	rows := make([]avgRow, nN)
	for n := 0; n < nN; n++ {
		// Serving candidates for node n: fetchable placement nodes plus
		// (constant) the origin when fetchable.
		var serves []int
		for mm := 0; mm < nN; mm++ {
			if mm != origin && fetch[n][mm] {
				serves = append(serves, mm)
			}
		}
		canOrigin := fetch[n][origin]
		if !canOrigin && len(serves) == 0 {
			return nil, fmt.Errorf("%w: node %d has no serving candidates", ErrGoalUnattainable, n)
		}
		for i := 0; i < nI; i++ {
			for k := 0; k < nK; k++ {
				rd := float64(in.Counts.Reads[n][i][k])
				if rd == 0 {
					continue
				}
				rows[n].bound += in.Goal.Tavg * rd
				// Constraint (8): routes sum to one.
				sumCoefs := make([]lp.Coef, 0, len(serves)+1)
				for _, mm := range serves {
					rv := m.AddVar(0, 1, 0, "")
					sumCoefs = append(sumCoefs, lp.Coef{Var: rv, Value: 1})
					// Constraint (9): route <= store.
					m.AddLE([]lp.Coef{
						{Var: rv, Value: 1},
						{Var: b.storeIdx[mm][i][k], Value: -1},
					}, 0, "")
					rows[n].coefs = append(rows[n].coefs,
						lp.Coef{Var: rv, Value: rd * in.Topo.Latency[n][mm]})
				}
				if canOrigin {
					ov := m.AddVar(0, 1, 0, "")
					sumCoefs = append(sumCoefs, lp.Coef{Var: ov, Value: 1})
					rows[n].coefs = append(rows[n].coefs,
						lp.Coef{Var: ov, Value: rd * in.Topo.Latency[n][origin]})
				}
				m.AddEQ(sumCoefs, 1, "")
			}
		}
	}
	// Constraint (7): per-user average latency (or one aggregate row).
	switch in.Goal.Scope {
	case PerUser:
		for n := 0; n < nN; n++ {
			if len(rows[n].coefs) == 0 {
				continue
			}
			m.AddLE(rows[n].coefs, rows[n].bound, "")
		}
	case Overall:
		var coefs []lp.Coef
		bound := 0.0
		for n := 0; n < nN; n++ {
			coefs = append(coefs, rows[n].coefs...)
			bound += rows[n].bound
		}
		if len(coefs) > 0 {
			m.AddLE(coefs, bound, "")
		}
	}

	in.addStorageConstraint(b, class)
	in.addReplicaConstraint(b, class)
	return b, nil
}

func (in *Instance) avgLowerBound(class *Class, opts BoundOptions) (*Bound, error) {
	b, err := in.buildAvgLP(class)
	if err != nil {
		return nil, err
	}
	sol, err := lp.SolveModel(b.model, opts.LP)
	if err != nil {
		if errors.Is(err, lp.ErrInfeasible) {
			return nil, fmt.Errorf("%w (class %s)", ErrGoalUnattainable, class.Name)
		}
		return nil, fmt.Errorf("solve %s avg bound: %w", class.Name, err)
	}
	out := &Bound{
		Class:        class.Name,
		LPBound:      sol.Objective,
		LPIterations: sol.Iterations,
		LPVariables:  b.model.NumVars(),
		Stats:        sol.Stats,
		StoreFrac:    extractStore(b, sol),
		Basis:        sol.Basis,
	}
	// The rounding algorithm targets the QoS metric; for the average-
	// latency goal the LP bound stands alone (the paper's methodology
	// section states the procedure is identical, using bounds directly).
	return out, nil
}
