package topology

// Parameterized topology families beyond the AS-like Generate model. The
// generators here are deterministic in their seed and scale to hundreds of
// nodes; they exist so the scenario layer can sweep placement questions
// across structurally different networks (the evaluation style of the
// tree-network replica-placement literature) instead of a single instance.

import (
	"errors"
	"fmt"
	"math"

	"wideplace/internal/xrand"
)

// TransitStubOptions configures GenerateTransitStub.
type TransitStubOptions struct {
	// N is the total number of sites (default 20). Transit-domain sizing
	// is derived from N unless Transit is set.
	N int
	// Transit is the number of backbone (transit) nodes (default ~sqrt(N),
	// at least 2). The remaining N-Transit nodes are stubs.
	Transit int
	// Seed drives every random choice.
	Seed uint64
	// TransitHopMin/Max bound the backbone link latencies in ms (defaults
	// 20/60: a fast wide-area core).
	TransitHopMin, TransitHopMax float64
	// StubHopMin/Max bound the stub access-link latencies in ms (defaults
	// 80/160: last-mile links dominate, as in the paper's 100-200 ms hops).
	StubHopMin, StubHopMax float64
	// ExtraTransitLinks adds redundant backbone links beyond the transit
	// ring (default Transit/2).
	ExtraTransitLinks int
	// Origin is the headquarters node index (default 0, a transit node).
	Origin int
}

func (o TransitStubOptions) withDefaults() TransitStubOptions {
	if o.N == 0 {
		o.N = 20
	}
	if o.Transit == 0 {
		t := 2
		for t*t < o.N {
			t++
		}
		o.Transit = t
	}
	if o.TransitHopMin == 0 {
		o.TransitHopMin = 20
	}
	if o.TransitHopMax == 0 {
		o.TransitHopMax = 60
	}
	if o.StubHopMin == 0 {
		o.StubHopMin = 80
	}
	if o.StubHopMax == 0 {
		o.StubHopMax = 160
	}
	if o.ExtraTransitLinks == 0 {
		o.ExtraTransitLinks = o.Transit / 2
	}
	return o
}

// GenerateTransitStub builds a two-level transit-stub topology: a ring of
// transit (backbone) nodes with a few redundant chords, and stub nodes
// each homed on one transit node through a slower access link. Nodes
// [0, Transit) are the backbone; stubs follow. The structure mirrors the
// classic GT-ITM transit-stub model at the granularity this repository
// needs: latencies inside the core are short, and most of any wide-area
// path is the two access links at its ends.
func GenerateTransitStub(opts TransitStubOptions) (*Topology, error) {
	opts = opts.withDefaults()
	if opts.N < 3 {
		return nil, errors.New("topology: GenerateTransitStub needs at least three nodes")
	}
	if opts.Transit < 2 || opts.Transit > opts.N {
		return nil, fmt.Errorf("topology: transit count %d out of range [2, %d]", opts.Transit, opts.N)
	}
	if opts.TransitHopMin < 0 || opts.TransitHopMax < opts.TransitHopMin ||
		opts.StubHopMin < 0 || opts.StubHopMax < opts.StubHopMin {
		return nil, errors.New("topology: hop latency ranges must satisfy 0 <= min <= max")
	}
	rng := xrand.New(opts.Seed)
	var links []Link
	// Backbone ring keeps the core connected regardless of the chords.
	for t := 0; t < opts.Transit; t++ {
		links = append(links, Link{
			A: t, B: (t + 1) % opts.Transit,
			Latency: rng.Range(opts.TransitHopMin, opts.TransitHopMax),
		})
	}
	for e := 0; e < opts.ExtraTransitLinks; e++ {
		a := rng.Intn(opts.Transit)
		b := rng.Intn(opts.Transit)
		if a != b {
			links = append(links, Link{A: a, B: b, Latency: rng.Range(opts.TransitHopMin, opts.TransitHopMax)})
		}
	}
	// Each stub homes on a uniformly chosen transit node.
	for s := opts.Transit; s < opts.N; s++ {
		links = append(links, Link{
			A: s, B: rng.Intn(opts.Transit),
			Latency: rng.Range(opts.StubHopMin, opts.StubHopMax),
		})
	}
	return New(opts.N, links, opts.Origin)
}

// Tree shape names for TreeOptions.Shape.
const (
	// TreeKAry is the balanced k-ary tree: node i hangs under (i-1)/k.
	TreeKAry = "kary"
	// TreeRandom attaches each node to a uniformly chosen earlier node,
	// yielding random recursive trees (logarithmic depth, irregular fan).
	TreeRandom = "random"
	// TreeCaterpillar is a long spine with leaf legs — the deep-and-thin
	// worst case for distance-bounded placement.
	TreeCaterpillar = "caterpillar"
)

// TreeOptions configures GenerateTree.
type TreeOptions struct {
	// N is the total number of sites (default 20).
	N int
	// Shape is one of kary, random or caterpillar (default kary).
	Shape string
	// Arity is the branching factor of the kary shape (default 2).
	Arity int
	// Seed drives every random choice.
	Seed uint64
	// HopMin/HopMax bound the depth-0 edge latencies in ms (defaults
	// 60/180: wide-area trunks near the root).
	HopMin, HopMax float64
	// DepthScale multiplies the latency range once per depth level
	// (default 0.7): an edge from depth d to depth d+1 draws from
	// [HopMin, HopMax) * DepthScale^d, so links get progressively more
	// local away from the root — the distribution-tree structure of the
	// tree-network replica-placement literature.
	DepthScale float64
	// Origin is the headquarters node index (default 0, the structural
	// root).
	Origin int
}

func (o TreeOptions) withDefaults() TreeOptions {
	if o.N == 0 {
		o.N = 20
	}
	if o.Shape == "" {
		o.Shape = TreeKAry
	}
	if o.Arity == 0 {
		o.Arity = 2
	}
	if o.HopMin == 0 {
		o.HopMin = 60
	}
	if o.HopMax == 0 {
		o.HopMax = 180
	}
	if o.DepthScale == 0 {
		o.DepthScale = 0.7
	}
	return o
}

// GenerateTree builds a tree topology in one of three shapes with
// depth-weighted edge latencies. Trees matter beyond structural variety:
// on them the exact solver of internal/exact computes provably optimal
// placements, so every tree instance doubles as a correctness oracle for
// the LP bound and rounding machinery. Node 0 is the structural root;
// edges are generated for nodes 1..N-1 in index order, so a fixed seed
// yields a fixed topology regardless of shape.
func GenerateTree(opts TreeOptions) (*Topology, error) {
	opts = opts.withDefaults()
	if opts.N < 2 {
		return nil, errors.New("topology: GenerateTree needs at least two nodes")
	}
	if opts.Arity < 1 {
		return nil, fmt.Errorf("topology: tree arity %d must be at least 1", opts.Arity)
	}
	if opts.HopMin < 0 || opts.HopMax < opts.HopMin {
		return nil, errors.New("topology: hop latency ranges must satisfy 0 <= min <= max")
	}
	if !(opts.DepthScale > 0) || math.IsInf(opts.DepthScale, 0) {
		return nil, fmt.Errorf("topology: tree depth scale %v must be a finite positive number", opts.DepthScale)
	}
	parent := make([]int, opts.N)
	rng := xrand.New(opts.Seed)
	switch opts.Shape {
	case TreeKAry:
		for i := 1; i < opts.N; i++ {
			parent[i] = (i - 1) / opts.Arity
		}
	case TreeRandom:
		for i := 1; i < opts.N; i++ {
			parent[i] = rng.Intn(i)
		}
	case TreeCaterpillar:
		// First half is the spine; the rest are legs dealt round-robin
		// onto spine nodes.
		spine := (opts.N + 1) / 2
		for i := 1; i < spine; i++ {
			parent[i] = i - 1
		}
		for i := spine; i < opts.N; i++ {
			parent[i] = (i - spine) % spine
		}
	default:
		return nil, fmt.Errorf("topology: unknown tree shape %q (want %s, %s or %s)",
			opts.Shape, TreeKAry, TreeRandom, TreeCaterpillar)
	}
	depth := make([]int, opts.N)
	links := make([]Link, 0, opts.N-1)
	for i := 1; i < opts.N; i++ {
		p := parent[i]
		depth[i] = depth[p] + 1
		scale := math.Pow(opts.DepthScale, float64(depth[p]))
		links = append(links, Link{A: i, B: p, Latency: rng.Range(opts.HopMin, opts.HopMax) * scale})
	}
	return New(opts.N, links, opts.Origin)
}

// RemoteOfficeOptions configures GenerateRemoteOffice.
type RemoteOfficeOptions struct {
	// N is the total number of sites including headquarters (default 20).
	N int
	// Clusters is the number of remote-office clusters (default max(2, N/5)).
	Clusters int
	// Seed drives every random choice.
	Seed uint64
	// LocalHopMin/Max bound intra-cluster (campus LAN/MAN) latencies in ms
	// (defaults 5/25).
	LocalHopMin, LocalHopMax float64
	// UplinkMin/Max bound each cluster's WAN uplink to headquarters in ms
	// (defaults 120/250: offices are far from the origin).
	UplinkMin, UplinkMax float64
	// Origin is the headquarters node index (default 0).
	Origin int
}

func (o RemoteOfficeOptions) withDefaults() RemoteOfficeOptions {
	if o.N == 0 {
		o.N = 20
	}
	if o.Clusters == 0 {
		o.Clusters = o.N / 5
		if o.Clusters < 2 {
			o.Clusters = 2
		}
	}
	if o.LocalHopMin == 0 {
		o.LocalHopMin = 5
	}
	if o.LocalHopMax == 0 {
		o.LocalHopMax = 25
	}
	if o.UplinkMin == 0 {
		o.UplinkMin = 120
	}
	if o.UplinkMax == 0 {
		o.UplinkMax = 250
	}
	return o
}

// GenerateRemoteOffice builds the clustered enterprise scenario the paper
// motivates in Section 6.2 (deploying file servers for remote offices):
// one headquarters node plus Clusters office clusters. Sites inside a
// cluster form a star on a cluster gateway with LAN-scale latencies; each
// gateway reaches headquarters over a single slow WAN uplink. Placing one
// replica per cluster is cheap and effective in this family, which is what
// makes it a useful stress contrast to the flat AS-like model.
func GenerateRemoteOffice(opts RemoteOfficeOptions) (*Topology, error) {
	opts = opts.withDefaults()
	if opts.N < 3 {
		return nil, errors.New("topology: GenerateRemoteOffice needs at least three nodes")
	}
	if opts.Clusters < 1 || opts.Clusters > opts.N-1 {
		return nil, fmt.Errorf("topology: cluster count %d out of range [1, %d]", opts.Clusters, opts.N-1)
	}
	if opts.LocalHopMin < 0 || opts.LocalHopMax < opts.LocalHopMin ||
		opts.UplinkMin < 0 || opts.UplinkMax < opts.UplinkMin {
		return nil, errors.New("topology: hop latency ranges must satisfy 0 <= min <= max")
	}
	if opts.Origin < 0 || opts.Origin >= opts.N {
		return nil, fmt.Errorf("topology: origin %d out of range [0, %d)", opts.Origin, opts.N)
	}
	rng := xrand.New(opts.Seed)
	var links []Link
	// The non-origin sites are dealt round-robin into clusters; the first
	// member of each cluster acts as its gateway and carries the uplink.
	gateway := make([]int, opts.Clusters)
	for i := range gateway {
		gateway[i] = -1
	}
	cluster := 0
	for n := 0; n < opts.N; n++ {
		if n == opts.Origin {
			continue
		}
		c := cluster % opts.Clusters
		cluster++
		if gateway[c] < 0 {
			gateway[c] = n
			links = append(links, Link{
				A: n, B: opts.Origin,
				Latency: rng.Range(opts.UplinkMin, opts.UplinkMax),
			})
			continue
		}
		links = append(links, Link{
			A: n, B: gateway[c],
			Latency: rng.Range(opts.LocalHopMin, opts.LocalHopMax),
		})
	}
	return New(opts.N, links, opts.Origin)
}
