package lp

// Shared numerical tolerances of the factorization layer. Both basis
// backends (DenseFactor, SparseFactor) read these constants, so the
// dense/sparse crossover (Options.DenseLimit) can move without changing
// which pivots are accepted or which fill is dropped — the two backends
// make identical accept/reject decisions on the same numbers. A test
// (TestFactorTolerancesShared) pins the values and the sharing.
const (
	// factorPivTol is the minimum pivot magnitude either backend accepts,
	// both during a full factorization and when absorbing a basis update.
	// An update whose pivot falls below it fails with ErrNumerical and the
	// simplex refactorizes instead.
	factorPivTol = 1e-10

	// factorDropTol is the magnitude below which update fill (eta entries,
	// Forrest-Tomlin spike and multiplier entries) is dropped as numerical
	// noise rather than stored.
	factorDropTol = 1e-12

	// factorUpdateAccTol bounds the relative disagreement between the
	// Forrest-Tomlin pivot computed through the spike elimination and its
	// independent value from the determinant identity (new diagonal =
	// w[pos] * old diagonal). A larger disagreement means the update -- and
	// therefore every solve after it -- would be inaccurate; the backend
	// fails the update with ErrNumerical and the simplex refactorizes,
	// absorbing the basis change exactly.
	factorUpdateAccTol = 1e-9

	// denseMaxEtas bounds the dense backend's product-form eta file before
	// it requests a refactorization. Dense etas are cheap to apply but the
	// dense refactorization is cheap too, so the file stays short.
	denseMaxEtas = 64

	// sparseMaxEtas bounds the sparse backend's Forrest-Tomlin update count
	// before it requests a refactorization. FT updates modify the stored U
	// in place and append only a short row eta per pivot, so the file can
	// run far longer than a product-form eta file without numerical drift
	// or densifying solves — this is what keeps the sparse refactorization
	// count low on big bases.
	sparseMaxEtas = 500

	// luPivThreshold is the threshold-partial-pivoting acceptance factor of
	// the sparse LU: any candidate row within this factor of the largest
	// magnitude may pivot, and the sparsest acceptable row is chosen.
	// Element growth per elimination step is bounded by 1 + 1/threshold.
	luPivThreshold = 0.2

	// sparseFillLimit caps U's fill growth between refactorizations: when
	// update fill pushes nnz(U) beyond this multiple of the freshly
	// factored nnz, the backend requests a refactorization even if the eta
	// budget is not exhausted.
	sparseFillLimit = 4
)
