package lp

import (
	"context"
	"fmt"
	"math"
	"time"
)

// Options configures the simplex solver.
type Options struct {
	// Tol is the primal feasibility / dual optimality tolerance.
	Tol float64
	// PivTol is the minimum acceptable pivot magnitude.
	PivTol float64
	// MaxIter caps the total iteration count (0 = automatic).
	MaxIter int
	// Ctx, when non-nil, cancels the solve: the main loop polls it every
	// CheckEvery iterations and returns an error wrapping the context's
	// cause (errors.Is(err, context.Canceled) etc. hold).
	Ctx context.Context
	// Timeout caps the solve's wall-clock time (0 = unlimited). On expiry
	// the solve returns an error wrapping ErrTimeout.
	Timeout time.Duration
	// CheckEvery is the number of iterations between cancellation and
	// deadline checks (0 = automatic).
	CheckEvery int
	// BlandAfter is the number of consecutive degenerate iterations after
	// which the solver switches to Bland's rule (0 = automatic).
	BlandAfter int
	// DenseLimit is the basis size up to which the dense factorization is
	// used when Factorizer is nil (0 = automatic).
	DenseLimit int
	// Factorizer overrides the automatic factorization choice.
	Factorizer Factorizer
	// SectionSize is the number of columns scanned per iteration by the
	// partial-pricing rule (0 = automatic; negative = full Dantzig
	// pricing). Partial pricing scans a rotating window and picks the best
	// eligible column in it, falling back to a full sweep before declaring
	// optimality.
	SectionSize int
	// Start, when non-nil, seeds the solve with a prior basis (warm
	// start). The snapshot is validated against the problem shape and for
	// internal consistency; on any mismatch the solver silently falls back
	// to the crash basis, so a stale Start can cost speed but never
	// correctness. Stats.WarmSolves/ColdSolves report which path ran.
	Start *Basis
	// Pricing selects the entering-column rule (zero value = devex).
	// PricingDantzig restores the pre-devex rotating-window partial
	// pricing exactly.
	Pricing PricingRule
	// Presolve controls the presolve/postsolve layer (zero value = on).
	// PresolveOff solves the problem as given, exactly as before the
	// layer existed.
	Presolve PresolveMode
}

func (o Options) withDefaults(m, n int) Options {
	if o.Tol == 0 {
		o.Tol = 1e-7
	}
	if o.PivTol == 0 {
		o.PivTol = 1e-9
	}
	if o.MaxIter == 0 {
		o.MaxIter = 20000 + 100*(m+n)
	}
	if o.BlandAfter == 0 {
		o.BlandAfter = 1000
	}
	if o.DenseLimit == 0 {
		o.DenseLimit = 600
	}
	if o.SectionSize == 0 {
		o.SectionSize = 2000
		if n < 4*o.SectionSize {
			o.SectionSize = -1 // small problems: full pricing
		}
	}
	if o.CheckEvery == 0 {
		o.CheckEvery = 64
	}
	if o.Pricing == PricingAuto {
		o.Pricing = PricingDevex
	}
	return o
}

// Solve compiles nothing; it solves an already compiled Problem.
func Solve(p *Problem, opts Options) (*Solution, error) {
	if opts.Presolve != PresolveOff && p.numRows > 0 {
		return solvePresolved(p, opts)
	}
	s := newSimplex(p, opts)
	return s.solve()
}

// SolveModel compiles and solves a Model.
func SolveModel(m *Model, opts Options) (*Solution, error) {
	p, err := m.Compile()
	if err != nil {
		return nil, err
	}
	return Solve(p, opts)
}

// Column status markers.
type colStatus uint8

const (
	nonbasicLower colStatus = iota
	nonbasicUpper
	nonbasicFree
	basic
)

type simplex struct {
	p    *Problem
	opts Options
	m, n int // rows, total columns (struct + slack)

	fac    Factorizer
	status []colStatus
	basis  []int     // column basic in each row position
	x      []float64 // current value of every column
	xB     []float64 // values of basic columns (mirror of x at basis positions)

	cB   []float64 // basic cost vector for the current phase
	y    []float64 // duals scratch
	w    []float64 // FTRAN image of the entering column
	rhs0 []float64 // scratch for -N*xN

	iter       int
	degenerate int
	bland      bool
	priceStart int
	warm       bool // solve was seeded from Options.Start

	devex bool      // devex pricing active
	gamma []float64 // devex weight per column
	beta  []float64 // scratch for the pivot row of B^-1

	stats     Stats
	start     time.Time
	deadline  time.Time // zero when no timeout is set
	lastCheck int       // iteration count at the last interrupt poll
}

func newSimplex(p *Problem, opts Options) *simplex {
	m := p.numRows
	n := p.numStruct + p.numRows
	opts = opts.withDefaults(m, n)
	s := &simplex{
		p: p, opts: opts, m: m, n: n,
		status: make([]colStatus, n),
		basis:  make([]int, m),
		x:      make([]float64, n),
		xB:     make([]float64, m),
		cB:     make([]float64, m),
		y:      make([]float64, m),
		w:      make([]float64, m),
		rhs0:   make([]float64, m),
	}
	if opts.Factorizer != nil {
		s.fac = opts.Factorizer
	} else if m <= opts.DenseLimit {
		s.fac = NewDenseFactor(0)
	} else {
		s.fac = NewSparseFactor(0)
	}
	if opts.Pricing == PricingDevex {
		s.devex = true
		s.initDevex()
	}
	return s
}

func (s *simplex) solve() (*Solution, error) {
	s.start = time.Now()
	if s.opts.Timeout > 0 {
		s.deadline = s.start.Add(s.opts.Timeout)
	}
	// Catch an already-canceled context (or an already-expired deadline)
	// before any factorization work.
	if err := s.checkInterrupt(); err != nil {
		return nil, err
	}
	if s.m == 0 {
		return s.solveUnconstrained()
	}
	// Seed from the caller's basis when one is given and usable; a
	// snapshot that fails validation or factorizes singular falls back to
	// the all-slack crash basis (structural variables at a bound).
	if b := s.opts.Start; b.compatibleWith(s.p) {
		s.installBasis(b)
		if s.fac.Factor(s.p.cols, s.basis) == nil {
			s.warm = true
		}
	}
	if !s.warm {
		s.installCrashBasis()
		if err := s.fac.Factor(s.p.cols, s.basis); err != nil {
			return nil, err
		}
	}
	s.stats.Refactorizations++
	s.recomputeXB()

	// Phase 1: drive infeasibility to zero.
	if s.infeasibility() > s.opts.Tol {
		if err := s.loop(true); err != nil {
			return nil, err
		}
		if s.infeasibility() > s.opts.Tol*math.Max(1, s.scale()) {
			return nil, ErrInfeasible
		}
	}
	s.stats.Phase1Iterations = s.iter
	// Phase 2: optimize the true objective.
	if err := s.loop(false); err != nil {
		return nil, err
	}
	return s.buildSolution(), nil
}

// checkInterrupt polls the context and the wall-clock deadline. The
// returned errors are distinguishable: context cancellation wraps the
// context's cause, a timeout wraps ErrTimeout.
func (s *simplex) checkInterrupt() error {
	if ctx := s.opts.Ctx; ctx != nil {
		select {
		case <-ctx.Done():
			return fmt.Errorf("lp: solve interrupted after %d iterations: %w", s.iter, context.Cause(ctx))
		default:
		}
	}
	if !s.deadline.IsZero() && time.Now().After(s.deadline) {
		return fmt.Errorf("%w: budget %v exhausted after %d iterations", ErrTimeout, s.opts.Timeout, s.iter)
	}
	return nil
}

// solveUnconstrained handles the degenerate m == 0 case.
func (s *simplex) solveUnconstrained() (*Solution, error) {
	sol := &Solution{X: make([]float64, s.p.numStruct)}
	obj := 0.0
	for j := 0; j < s.p.numStruct; j++ {
		c := s.p.obj[j]
		switch {
		case c > 0:
			if math.IsInf(s.p.lo[j], -1) {
				return nil, ErrUnbounded
			}
			sol.X[j] = s.p.lo[j]
		case c < 0:
			if math.IsInf(s.p.hi[j], 1) {
				return nil, ErrUnbounded
			}
			sol.X[j] = s.p.hi[j]
		default:
			sol.X[j] = s.startValue(j)
		}
		obj += c * sol.X[j]
	}
	if s.p.sense == Maximize {
		obj = -obj
	}
	sol.Objective = obj
	s.finalizeStats()
	sol.Stats = s.stats
	return sol, nil
}

// finalizeStats stamps the per-solve totals and attributes them to the
// warm- or cold-start ledger so aggregators can tell the two apart.
func (s *simplex) finalizeStats() {
	s.stats.Iterations = s.iter
	s.stats.Wall = time.Since(s.start)
	s.stats.PricingRule = s.opts.Pricing.String()
	if s.warm {
		s.stats.WarmSolves = 1
		s.stats.WarmIterations = s.iter
		s.stats.WarmRefactorizations = s.stats.Refactorizations
	} else {
		s.stats.ColdSolves = 1
		s.stats.ColdIterations = s.iter
		s.stats.ColdRefactorizations = s.stats.Refactorizations
	}
}

func (s *simplex) startStatus(j int) colStatus {
	lo, hi := s.p.lo[j], s.p.hi[j]
	switch {
	case math.IsInf(lo, -1) && math.IsInf(hi, 1):
		return nonbasicFree
	case math.IsInf(lo, -1):
		return nonbasicUpper
	default:
		// Prefer the bound closer to zero for finite ranges.
		if !math.IsInf(hi, 1) && abs(hi) < abs(lo) {
			return nonbasicUpper
		}
		return nonbasicLower
	}
}

func (s *simplex) startValue(j int) float64 {
	switch s.startStatus(j) {
	case nonbasicLower:
		return s.p.lo[j]
	case nonbasicUpper:
		return s.p.hi[j]
	default:
		return 0
	}
}

// recomputeXB solves B*xB = -N*xN from scratch.
func (s *simplex) recomputeXB() {
	for i := range s.rhs0 {
		s.rhs0[i] = 0
	}
	for j := 0; j < s.n; j++ {
		if s.status[j] == basic || s.x[j] == 0 {
			continue
		}
		xj := s.x[j]
		ri, rv := s.p.cols.Col(j)
		for k, r := range ri {
			s.rhs0[r] -= rv[k] * xj
		}
	}
	s.fac.Ftran(s.rhs0)
	copy(s.xB, s.rhs0)
	for i, q := range s.basis {
		s.x[q] = s.xB[i]
	}
}

// infeasibility returns the total bound violation of the basic variables.
func (s *simplex) infeasibility() float64 {
	sum := 0.0
	for i, q := range s.basis {
		v := s.xB[i]
		if lo := s.p.lo[q]; v < lo {
			sum += lo - v
		} else if hi := s.p.hi[q]; v > hi {
			sum += v - hi
		}
	}
	return sum
}

// scale returns a magnitude estimate used to relativize tolerances.
func (s *simplex) scale() float64 {
	mx := 1.0
	for i := range s.xB {
		if a := abs(s.xB[i]); a > mx {
			mx = a
		}
	}
	return mx
}

// phase1Costs fills cB with the gradient of the infeasibility sum.
func (s *simplex) phase1Costs() {
	tol := s.opts.Tol
	for i, q := range s.basis {
		v := s.xB[i]
		switch {
		case v < s.p.lo[q]-tol:
			s.cB[i] = -1
		case v > s.p.hi[q]+tol:
			s.cB[i] = 1
		default:
			s.cB[i] = 0
		}
	}
}

func (s *simplex) phase2Costs() {
	for i, q := range s.basis {
		s.cB[i] = s.p.obj[q]
	}
}

// reducedCost computes d_j = c_j - y . A_j for column j given duals in s.y.
func (s *simplex) reducedCost(j int, phase1 bool) float64 {
	c := 0.0
	if !phase1 {
		c = s.p.obj[j]
	}
	ri, rv := s.p.cols.Col(j)
	for k, r := range ri {
		c -= s.y[r] * rv[k]
	}
	return c
}

// score rates column j as an entering candidate; score <= tol means not
// eligible. dir is the movement direction of the entering variable.
func (s *simplex) score(j int, phase1 bool) (score, dir float64) {
	st := s.status[j]
	if st == basic {
		return 0, 0
	}
	d := s.reducedCost(j, phase1)
	switch st {
	case nonbasicLower:
		return -d, 1
	case nonbasicUpper:
		return d, -1
	default: // nonbasicFree
		if d < 0 {
			return -d, 1
		}
		return d, -1
	}
}

// price selects the entering column, returning (-1, 0) at optimality. With
// partial pricing it scans a rotating window of SectionSize columns and
// returns the best eligible column of the first non-empty window; Bland's
// rule and small problems use a full sweep.
func (s *simplex) price(phase1 bool) (entering int, dir float64) {
	tol := s.opts.Tol
	if s.bland {
		for j := 0; j < s.n; j++ {
			if sc, dj := s.score(j, phase1); sc > tol {
				s.stats.PricingScans += int64(j + 1)
				return j, dj
			}
		}
		s.stats.PricingScans += int64(s.n)
		return -1, 0
	}
	if s.devex {
		return s.devexPrice(phase1)
	}
	section := s.opts.SectionSize
	if section < 0 {
		section = s.n
	}
	bestJ, bestScore, bestDir := -1, tol, 0.0
	scanned := 0
	j := s.priceStart % s.n
	for scanned < s.n {
		if sc, dj := s.score(j, phase1); sc > bestScore {
			bestJ, bestScore, bestDir = j, sc, dj
		}
		scanned++
		j++
		if j == s.n {
			j = 0
		}
		if scanned%section == 0 && bestJ >= 0 {
			break
		}
	}
	if bestJ >= 0 {
		s.priceStart = j
	}
	s.stats.PricingScans += int64(scanned)
	return bestJ, bestDir
}

// ratioEvent describes a blocking event of the ratio test.
type ratioEvent struct {
	t      float64
	pos    int     // basis position (-1 = entering variable's own bound)
	atHi   bool    // leaving variable leaves at its upper bound
	pivMag float64 // |w[pos]|, used for stability tie-breaking
}

// ratioTest scans the FTRAN image w for the first blocking event when the
// entering variable q moves in direction dir.
func (s *simplex) ratioTest(q int, dir float64, phase1 bool) (ratioEvent, bool) {
	tol := s.opts.Tol
	piv := s.opts.PivTol
	best := ratioEvent{t: math.Inf(1), pos: -1}
	// Entering variable's own opposite bound (bound flip).
	if rng := s.p.hi[q] - s.p.lo[q]; !math.IsInf(rng, 1) {
		best = ratioEvent{t: rng, pos: -1}
	}
	for i := range s.w {
		wi := s.w[i]
		if abs(wi) <= piv {
			continue
		}
		rate := -dir * wi // movement rate of basic i
		qi := s.basis[i]
		lo, hi := s.p.lo[qi], s.p.hi[qi]
		v := s.xB[i]
		var limit float64
		var atHi bool
		switch {
		case phase1 && v < lo-tol:
			// Infeasible below: blocks only when moving up to lo.
			if rate <= 0 {
				continue
			}
			limit, atHi = (lo-v)/rate, false
		case phase1 && v > hi+tol:
			if rate >= 0 {
				continue
			}
			limit, atHi = (hi-v)/rate, true
		case rate > 0:
			if math.IsInf(hi, 1) {
				continue
			}
			limit, atHi = (hi-v)/rate, true
		default: // rate < 0
			if math.IsInf(lo, -1) {
				continue
			}
			limit, atHi = (lo-v)/rate, false
		}
		if limit < 0 {
			limit = 0
		}
		if limit < best.t-tol ||
			(limit < best.t+tol && abs(wi) > best.pivMag) {
			best = ratioEvent{t: limit, pos: i, atHi: atHi, pivMag: abs(wi)}
		}
	}
	if math.IsInf(best.t, 1) {
		return best, false
	}
	return best, true
}

// loop runs simplex iterations for one phase.
func (s *simplex) loop(phase1 bool) error {
	for {
		if s.iter >= s.opts.MaxIter {
			return fmt.Errorf("%w after %d iterations", ErrIterLimit, s.iter)
		}
		if s.iter-s.lastCheck >= s.opts.CheckEvery {
			s.lastCheck = s.iter
			if err := s.checkInterrupt(); err != nil {
				return err
			}
		}
		if phase1 && s.infeasibility() <= s.opts.Tol {
			return nil
		}
		if phase1 {
			s.phase1Costs()
		} else {
			s.phase2Costs()
		}
		copy(s.y, s.cB)
		s.fac.Btran(s.y)
		q, dir := s.price(phase1)
		if q < 0 {
			return nil // optimal for this phase
		}
		// FTRAN the entering column.
		for i := range s.w {
			s.w[i] = 0
		}
		ri, rv := s.p.cols.Col(q)
		for k, r := range ri {
			s.w[r] = rv[k]
		}
		s.fac.Ftran(s.w)

		ev, ok := s.ratioTest(q, dir, phase1)
		if !ok {
			if phase1 {
				return fmt.Errorf("%w: unbounded phase-1 direction", ErrNumerical)
			}
			return ErrUnbounded
		}
		s.iter++
		if ev.t <= s.opts.Tol {
			s.degenerate++
			s.stats.DegenerateSteps++
			if s.degenerate >= s.opts.BlandAfter {
				if !s.bland {
					s.stats.BlandActivations++
				}
				s.bland = true
			}
		} else {
			s.degenerate = 0
			s.bland = false
		}
		// Move the entering variable and update basics.
		step := dir * ev.t
		for i := range s.xB {
			if s.w[i] != 0 {
				s.xB[i] -= step * s.w[i]
				s.x[s.basis[i]] = s.xB[i]
			}
		}
		if ev.pos < 0 {
			s.stats.BoundFlips++
			// Bound flip: the entering variable jumps to its other bound.
			if s.status[q] == nonbasicLower {
				s.status[q] = nonbasicUpper
				s.x[q] = s.p.hi[q]
			} else {
				s.status[q] = nonbasicLower
				s.x[q] = s.p.lo[q]
			}
			continue
		}
		// Pivot: q enters at basis position ev.pos; the old basic leaves.
		leave := s.basis[ev.pos]
		if ev.atHi {
			s.status[leave] = nonbasicUpper
			s.x[leave] = s.p.hi[leave]
		} else {
			s.status[leave] = nonbasicLower
			s.x[leave] = s.p.lo[leave]
		}
		s.x[q] += step
		s.xB[ev.pos] = s.x[q]
		s.basis[ev.pos] = q
		s.status[q] = basic

		if s.devex {
			// Must run against the pre-pivot factorization: the weight
			// update needs the outgoing basis inverse's pivot row.
			s.devexUpdate(q, ev.pos, leave)
		}
		refactor, err := s.fac.Update(s.w, ev.pos)
		if err != nil {
			refactor = true
		}
		if refactor {
			if err := s.fac.Factor(s.p.cols, s.basis); err != nil {
				return err
			}
			s.stats.Refactorizations++
			s.recomputeXB()
		}
	}
}

func (s *simplex) buildSolution() *Solution {
	s.finalizeStats()
	sol := &Solution{
		X:          make([]float64, s.p.numStruct),
		Duals:      make([]float64, s.m),
		Iterations: s.iter,
		Stats:      s.stats,
		Basis:      s.snapshotBasis(),
	}
	obj := 0.0
	for j := 0; j < s.p.numStruct; j++ {
		sol.X[j] = s.x[j]
		obj += s.p.obj[j] * s.x[j]
	}
	if s.p.sense == Maximize {
		obj = -obj
	}
	sol.Objective = obj
	// Duals from the final basis: y = B^-T cB with phase-2 costs. Our slack
	// columns carry coefficient -1, so the conventional row dual is -y.
	s.phase2Costs()
	copy(s.y, s.cB)
	s.fac.Btran(s.y)
	for i := 0; i < s.m; i++ {
		d := s.y[i]
		if s.p.sense == Maximize {
			d = -d
		}
		sol.Duals[i] = d
	}
	return sol
}
